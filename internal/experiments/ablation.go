package experiments

import (
	"fmt"
	"time"

	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/netsim"
	"ccx/internal/selector"
	"ccx/internal/stats"
)

// Ablation experiments probe the design choices DESIGN.md calls out. They
// go beyond the paper's published evaluation but use the same simulated
// testbed, so their numbers are directly comparable to the figure
// reproductions.

// conclusionScenario returns the §5 heavy-load commercial setup that the
// ablations perturb one knob at a time.
func conclusionScenario(o Options) (scenario, []byte) {
	k := o.TimeScale
	blockSize := int64(scaledBlockSize(k))
	volume := int64(float64(20<<20) / k)
	if volume < blockSize {
		volume = blockSize
	}
	volume -= volume % blockSize
	data := datagen.OISTransactions(4<<20, 0.9, o.Seed)
	return scenario{
		data:        data,
		duration:    24 * time.Hour,
		maxBytes:    volume,
		heavyLoad:   true,
		traceOffset: 40 * time.Second,
	}, data
}

// AblationMethods compares every fixed method against the adaptive selector
// across the paper's four link classes. The paper's claim — adaptation
// matches or beats the best fixed choice on each link without knowing the
// link in advance — falls out of the table.
func AblationMethods(o Options) (*Report, error) {
	o = o.withDefaults()
	base, _ := conclusionScenario(o)
	// A smaller volume keeps the slow links affordable; relative totals are
	// what the comparison needs.
	base.maxBytes /= 4
	if base.maxBytes < int64(scaledBlockSize(o.TimeScale)) {
		base.maxBytes = int64(scaledBlockSize(o.TimeScale))
	}

	links := []netsim.Profile{netsim.Gigabit, netsim.Fast100, netsim.Slow1M, netsim.International}
	modes := []struct {
		name  string
		fixed *codec.Method
	}{
		{"adaptive", nil},
		{"fixed none", fixedMethod(codec.None)},
		{"fixed huffman", fixedMethod(codec.Huffman)},
		{"fixed lempel-ziv", fixedMethod(codec.LempelZiv)},
		{"fixed burrows-wheeler", fixedMethod(codec.BurrowsWheeler)},
	}
	tbl := stats.Table{
		Title:   "Ablation: total exchange time (s) per link, fixed methods vs adaptive",
		Columns: []string{"link", "adaptive", "none", "huffman", "lempel-ziv", "burrows-wheeler", "adaptive rank"},
	}
	notes := []string{}
	adaptiveAlwaysNearBest := true
	for _, link := range links {
		row := []string{link.Name}
		totals := make([]float64, 0, len(modes))
		for _, mode := range modes {
			sc := base
			sc.link = link
			sc.fixed = mode.fixed
			run, err := runAdaptive(o, sc)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", link.Name, mode.name, err)
			}
			totals = append(totals, run.Total.Seconds())
			row = append(row, fmt.Sprintf("%.2f", run.Total.Seconds()))
		}
		adaptive := totals[0]
		best := totals[1]
		rank := 1
		for _, t := range totals[1:] {
			if t < best {
				best = t
			}
			if t < adaptive {
				rank++
			}
		}
		row = append(row, fmt.Sprintf("%d of %d", rank, len(modes)))
		tbl.Rows = append(tbl.Rows, row)
		// Adaptation never needs to be the absolute winner, but it must stay
		// within 25 % of the best fixed method on every link.
		if adaptive > best*1.25 {
			adaptiveAlwaysNearBest = false
			notes = append(notes, fmt.Sprintf("SHAPE MISMATCH on %s: adaptive %.2fs vs best fixed %.2fs",
				link.Name, adaptive, best))
		}
	}
	if adaptiveAlwaysNearBest {
		notes = append(notes, "shape holds: adaptive stays within 25% of the best fixed method on every link, with no per-link tuning")
	}
	return &Report{ID: "ablation-methods", Title: "Fixed methods vs adaptive across links",
		Tables: []stats.Table{tbl}, Notes: notes}, nil
}

// AblationThresholds sweeps a common multiplier over the paper's 0.83/3.48
// thresholds on the conclusion scenario. The published constants should sit
// near the minimum of the total-time curve.
func AblationThresholds(o Options) (*Report, error) {
	o = o.withDefaults()
	base, _ := conclusionScenario(o)
	tbl := stats.Table{
		Title:   "Ablation: threshold sensitivity (conclusion scenario)",
		Columns: []string{"threshold scale", "total (s)", "wire %", "mix (none/lz/bwt/huff)"},
	}
	scales := []float64{0.25, 0.5, 1, 2, 4, 8}
	totals := make([]float64, len(scales))
	for i, s := range scales {
		sc := base
		sc.thresholdScale = s
		run, err := runAdaptive(o, sc)
		if err != nil {
			return nil, err
		}
		totals[i] = run.Total.Seconds()
		counts := map[codec.Method]int{}
		for _, sm := range run.Samples {
			counts[sm.Result.Decision.Method]++
		}
		tbl.AddRow(fmt.Sprintf("%.2fx", s),
			fmt.Sprintf("%.2f", run.Total.Seconds()),
			fmt.Sprintf("%.1f", float64(run.Wire)/float64(run.Orig)*100),
			fmt.Sprintf("%d/%d/%d/%d", counts[codec.None], counts[codec.LempelZiv],
				counts[codec.BurrowsWheeler], counts[codec.Huffman]))
	}
	defaultTotal := totals[2] // scale 1x
	bestTotal := totals[0]
	for _, t := range totals {
		if t < bestTotal {
			bestTotal = t
		}
	}
	notes := []string{}
	if defaultTotal <= bestTotal*1.15 {
		notes = append(notes, "shape holds: the paper's published constants are within 15% of the sweep's best total")
	} else {
		notes = append(notes, fmt.Sprintf("published constants are %.0f%% off the sweep's best (%.2fs vs %.2fs)",
			(defaultTotal/bestTotal-1)*100, defaultTotal, bestTotal))
	}
	return &Report{ID: "ablation-thresholds", Title: "Threshold sensitivity",
		Tables: []stats.Table{tbl}, Notes: notes}, nil
}

// AblationBlockSize sweeps the transmission block size. Small blocks adapt
// faster but pay per-block overhead (code tables, headers, probes); large
// blocks amortize better but react sluggishly — the paper's 128 KB sits in
// the flat middle of the curve.
func AblationBlockSize(o Options) (*Report, error) {
	o = o.withDefaults()
	base, _ := conclusionScenario(o)
	paperBS := scaledBlockSize(o.TimeScale)
	tbl := stats.Table{
		Title:   "Ablation: block size (conclusion scenario; 1.00x = the paper's scaled 128 KB)",
		Columns: []string{"block size", "blocks", "total (s)", "wire %"},
	}
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		sc := base
		sc.blockSize = int(float64(paperBS) * mult)
		if sc.blockSize < 1024 {
			sc.blockSize = 1024
		}
		run, err := runAdaptive(o, sc)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%.2fx (%d B)", mult, sc.blockSize),
			fmt.Sprintf("%d", len(run.Samples)),
			fmt.Sprintf("%.2f", run.Total.Seconds()),
			fmt.Sprintf("%.1f", float64(run.Wire)/float64(run.Orig)*100))
	}
	return &Report{ID: "ablation-blocksize", Title: "Block size sweep",
		Tables: []stats.Table{tbl},
		Notes:  []string{"the paper chose 128 KB 'according to the efficiency of compression methods' (refs [32,33])"}}, nil
}

// AblationProbeSize sweeps the sampling probe. Tiny probes misjudge
// compressibility (code-table overhead dominates); the paper's 4 KB is the
// knee of the accuracy curve.
func AblationProbeSize(o Options) (*Report, error) {
	o = o.withDefaults()
	base, _ := conclusionScenario(o)
	tbl := stats.Table{
		Title:   "Ablation: probe size (conclusion scenario; paper uses 4096)",
		Columns: []string{"probe bytes", "total (s)", "wire %", "probe ratio error"},
	}
	for _, probe := range []int{256, 1024, 4096, 16384} {
		sc := base
		sc.probeSize = probe
		run, err := runAdaptive(o, sc)
		if err != nil {
			return nil, err
		}
		// Probe-ratio error: mean |probe ratio − achieved block ratio| over
		// blocks that were dictionary-compressed.
		var errSum float64
		var n int
		for _, sm := range run.Samples {
			d := sm.Result.Decision
			if d.Method != codec.LempelZiv {
				continue
			}
			achieved := sm.Result.Info.Ratio()
			diff := d.Inputs.ProbeRatio - achieved
			if diff < 0 {
				diff = -diff
			}
			errSum += diff
			n++
		}
		errStr := "-"
		if n > 0 {
			errStr = fmt.Sprintf("%.3f", errSum/float64(n))
		}
		tbl.AddRow(fmt.Sprintf("%d", probe),
			fmt.Sprintf("%.2f", run.Total.Seconds()),
			fmt.Sprintf("%.1f", float64(run.Wire)/float64(run.Orig)*100),
			errStr)
	}
	return &Report{ID: "ablation-probe", Title: "Probe size sweep",
		Tables: []stats.Table{tbl},
		Notes:  []string{"probe ratio error = mean |predicted − achieved| compression ratio on Lempel-Ziv blocks"}}, nil
}

// AblationPolicies compares the published ratio-gated selection algorithm
// against the Figure 6 characteristic-driven refinement on both §4.2
// workloads under the conclusion regime.
func AblationPolicies(o Options) (*Report, error) {
	o = o.withDefaults()
	base, _ := conclusionScenario(o)

	recSize := datagen.MolecularFormat().RecordSize()
	atoms := datagen.Molecular((2<<20)/recSize, o.Seed)
	molBatch, err := datagen.MolecularBatch(atoms)
	if err != nil {
		return nil, err
	}

	policies := []struct {
		name string
		mk   func(selector.Config) selector.Policy
	}{
		{"ratio (published)", func(c selector.Config) selector.Policy { return selector.RatioPolicy{Config: c} }},
		{"characteristic", func(c selector.Config) selector.Policy { return selector.CharacteristicPolicy{Config: c} }},
	}
	datasets := []struct {
		name string
		data []byte
	}{
		{"commercial", base.data},
		{"molecular", molBatch},
	}
	tbl := stats.Table{
		Title:   "Ablation: selection policy (conclusion scenario)",
		Columns: []string{"dataset", "policy", "total (s)", "wire %", "mix (none/lz/bwt/huff)"},
	}
	for _, ds := range datasets {
		for _, pol := range policies {
			sc := base
			sc.data = ds.data
			sc.policy = pol.mk
			run, err := runAdaptive(o, sc)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", ds.name, pol.name, err)
			}
			counts := map[codec.Method]int{}
			for _, sm := range run.Samples {
				counts[sm.Result.Decision.Method]++
			}
			tbl.AddRow(ds.name, pol.name,
				fmt.Sprintf("%.2f", run.Total.Seconds()),
				fmt.Sprintf("%.1f", float64(run.Wire)/float64(run.Orig)*100),
				fmt.Sprintf("%d/%d/%d/%d", counts[codec.None], counts[codec.LempelZiv],
					counts[codec.BurrowsWheeler], counts[codec.Huffman]))
		}
	}
	return &Report{ID: "ablation-policy", Title: "Selection policy comparison",
		Tables: []stats.Table{tbl},
		Notes: []string{
			"the characteristic policy chooses the method family from probe entropy/repetition (Figure 6's criteria)",
		}}, nil
}
