package experiments

import (
	"fmt"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/netsim"
	"ccx/internal/sampling"
	"ccx/internal/selector"
	"ccx/internal/trace"
)

// Figure7 renders the MBone connection-count trace driving §4.2.
func Figure7(o Options) (*Report, error) {
	o = o.withDefaults()
	tr := trace.MBoneSynthetic(o.Seed)
	s := Series{
		Title:  "Figure 7: number of connections",
		XLabel: "time (seconds)",
		YLabel: "number of connections",
	}
	for _, sm := range tr.Samples() {
		if sm.T.Seconds() > o.TraceSeconds {
			break
		}
		s.Points = append(s.Points, Point{X: sm.T.Seconds(), Y: float64(sm.Connections)})
	}
	return &Report{
		ID: "fig7", Title: "MBone connection trace",
		Series: []Series{{Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel, Points: s.Points}},
		Notes:  []string{"synthetic trace matching the published envelope (0-20 connections over 160 s)"},
	}, nil
}

// methodCode maps methods onto the paper's y-axis labels: 1 = none,
// 2 = Lempel-Ziv, 3 = Burrows-Wheeler, 4 = Huffman (Figures 8 and 11).
func methodCode(m codec.Method) int {
	switch m {
	case codec.LempelZiv:
		return 2
	case codec.BurrowsWheeler:
		return 3
	case codec.Huffman:
		return 4
	default:
		return 1
	}
}

// adaptiveSample is one block of an adaptive run, timestamped in virtual
// seconds.
type adaptiveSample struct {
	T      float64 // completion time, seconds into the run
	Result core.BlockResult
	// ChargedCompress is the virtual compression time charged to the
	// timeline at the paper's per-method speeds.
	ChargedCompress time.Duration
}

// adaptiveRun holds one simulated §4.2 scenario.
type adaptiveRun struct {
	Samples  []adaptiveSample
	SendBusy time.Duration
	CompBusy time.Duration
	Total    time.Duration
	Wire     int64
	Orig     int64
}

// chargeCompress converts a block outcome into the Sun-Fire-equivalent
// compression time (see paperCompressBps), scaled by K.
func chargeCompress(info codec.BlockInfo, k float64) time.Duration {
	bps, ok := paperCompressBps[info.Requested]
	if !ok || info.Requested == codec.None {
		return 0
	}
	return time.Duration(float64(info.OrigLen) / (bps / k) * float64(time.Second))
}

// scenario describes one simulated §4.2 run.
type scenario struct {
	data     []byte        // block source, cycled as needed
	duration time.Duration // virtual time budget
	maxBytes int64         // stop after this many original bytes (0 = none)
	// fixed disables adaptation and uses one method for every block — the
	// non-adaptive baselines (codec.None reproduces the paper's
	// "without compression" runs). nil means adapt normally.
	fixed *codec.Method
	// heavyLoad saturates the link above 14 connections instead of 20 —
	// the §5 conclusion regime, where the ×4 MBone load consumes ~90 % of
	// the 100 MBit link on average.
	heavyLoad bool
	// traceOffset starts the run that far into the MBone trace (the
	// conclusion runs sample the loaded mid-trace region).
	traceOffset time.Duration
	// link overrides the 100 MBit profile (zero value = Fast100).
	link netsim.Profile
	// selector overrides pieces of the decision config when non-zero.
	blockSize      int
	thresholdScale float64 // multiplies SendVsReduce and StrongVsReduce
	probeSize      int
	// policy overrides the decision policy (nil = the published ratio
	// algorithm).
	policy func(selector.Config) selector.Policy
}

// fixedMethod returns a pointer for scenario.fixed.
func fixedMethod(m codec.Method) *codec.Method { return &m }

// loadConfigFor builds the background-load mapping for a scenario.
func loadConfigFor(sc scenario, prof netsim.Profile, start time.Time) trace.LoadConfig {
	cfg := trace.DefaultLoadConfig(prof, start.Add(-sc.traceOffset))
	if sc.heavyLoad {
		// 90 % consumption at 14 connections (the mid-trace mean): the mean
		// load lands near the ~90 % the paper's §5 totals imply, while the
		// trace's dips still let the selector breathe.
		cfg.PerConnBps = prof.RateBps * 0.90 / (14 * 4)
	}
	return cfg
}

// scaledBlockSize divides the paper's 128 KB block by K (floor 4 KB).
// Scaling block size together with link and CPU rates keeps the per-block
// send-time/reduce-time ratios — and the number of blocks per run — equal
// to the paper's at any K.
func scaledBlockSize(k float64) int {
	bs := int(float64(128<<10) / k)
	if bs < 4<<10 {
		bs = 4 << 10
	}
	// Keep blocks 1 KB-aligned for tidy accounting.
	return bs &^ 1023
}

// runAdaptive streams blocks cut from the scenario's data through a loaded
// 100 MBit/s link until the virtual clock passes the duration or maxBytes
// have been sent, using the paper's block loop.
func runAdaptive(o Options, sc scenario) (*adaptiveRun, error) {
	k := o.TimeScale
	data := sc.data
	clk := netsim.NewVirtual()
	start := clk.Now()
	baseProf := sc.link
	if baseProf.RateBps == 0 {
		baseProf = netsim.Fast100
	}
	prof := scaleProfile(baseProf, k)
	link := netsim.NewLink(prof, clk, o.Seed)
	tr := trace.MBoneSynthetic(o.Seed)
	link.SetLoad(tr.LoadFunc(loadConfigFor(sc, prof, start), prof))

	// Deterministic CPU model: the engine's clock ticks a fixed amount per
	// reading, so every probe "takes" exactly one tick and its reducing
	// speed depends only on how much the sample shrank — no wall-clock
	// noise. The scale lands a typical commercial probe (≈70 % reduction of
	// the 4 KB sample) on the paper's Figure 4 Lempel-Ziv speed over K.
	const probeTick = time.Millisecond
	cpuClock := time.Unix(0, 0)
	now := func() time.Time {
		cpuClock = cpuClock.Add(probeTick)
		return cpuClock
	}
	const refReduction = 0.7 * float64(sampling.DefaultProbeSize)
	speedScale := (refReduction / probeTick.Seconds()) / (paperLZReducingBps / k)

	selCfg := selector.DefaultConfig()
	selCfg.BlockSize = scaledBlockSize(k)
	if sc.blockSize > 0 {
		selCfg.BlockSize = sc.blockSize
	}
	if sc.thresholdScale > 0 {
		selCfg.SendVsReduce *= sc.thresholdScale
		selCfg.StrongVsReduce *= sc.thresholdScale
	}
	// The probe stays at the paper's absolute 4 KB (the sampler caps it at
	// the block length): proportionally smaller samples would be dominated
	// by code-table overhead and misreport compressibility.
	var policy selector.Policy
	if sc.policy != nil {
		policy = sc.policy(selCfg)
	}
	engine, err := core.NewEngine(core.Config{
		Selector:   selCfg,
		ProbeSize:  sc.probeSize,
		Policy:     policy,
		Now:        now,
		SpeedScale: speedScale,
	})
	if err != nil {
		return nil, err
	}
	session := core.NewSession(engine)

	run := &adaptiveRun{}
	bs := engine.BlockSize()
	off := 0
	nextBlock := func() []byte {
		if len(data) == 0 {
			return nil
		}
		if off+bs > len(data) {
			off = 0
		}
		b := data[off : off+bs]
		off += bs
		return b
	}
	var fw *codec.FrameWriter
	var rawBuf writerBuffer
	if sc.fixed != nil {
		fw = codec.NewFrameWriter(&rawBuf, nil)
	}

	block := nextBlock()
	for block != nil {
		if clk.Now().Sub(start) >= sc.duration {
			break
		}
		if sc.maxBytes > 0 && run.Orig >= sc.maxBytes {
			break
		}
		var res core.BlockResult
		if sc.fixed != nil {
			rawBuf.Reset()
			info, err := fw.WriteBlock(*sc.fixed, block)
			if err != nil {
				return nil, err
			}
			res = core.BlockResult{
				Index: len(run.Samples),
				Info:  info, WireBytes: rawBuf.Len(),
			}
			res.Decision.Method = info.Method
			res.SendTime = link.Send(res.WireBytes)
		} else {
			next := nextBlock()
			r, err := session.TransmitBlock(block, next, func(frame []byte) (time.Duration, error) {
				return link.Send(len(frame)), nil
			})
			if err != nil {
				return nil, err
			}
			res = r
			block = next
		}
		charged := chargeCompress(res.Info, k)
		clk.Advance(charged)
		run.SendBusy += res.SendTime
		run.CompBusy += charged
		run.Wire += int64(res.WireBytes)
		run.Orig += int64(res.Info.OrigLen)
		run.Samples = append(run.Samples, adaptiveSample{
			T:               clk.Now().Sub(start).Seconds(),
			Result:          res,
			ChargedCompress: charged,
		})
		if sc.fixed != nil {
			block = nextBlock()
		}
	}
	run.Total = clk.Now().Sub(start)
	return run, nil
}

// writerBuffer is a minimal resettable byte sink.
type writerBuffer struct{ buf []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
func (w *writerBuffer) Reset()   { w.buf = w.buf[:0] }
func (w *writerBuffer) Len() int { return len(w.buf) }

// commercialAdaptive runs the §4.2 commercial scenario once (shared by
// Figures 8, 9 and 10).
func commercialAdaptive(o Options) (*adaptiveRun, error) {
	o = o.withDefaults()
	data := datagen.OISTransactions(4<<20, 0.9, o.Seed)
	return runAdaptive(o, scenario{
		data:     data,
		duration: time.Duration(o.TraceSeconds * float64(time.Second)),
	})
}

// molecularAdaptive runs the §4.2 molecular scenario (Figures 11 and 12):
// PBIO record batches with occasional repetitive topology blocks, matching
// the paper's "some small portions of the data have strings repetitions".
func molecularAdaptive(o Options) (*adaptiveRun, error) {
	o = o.withDefaults()
	recSize := datagen.MolecularFormat().RecordSize()
	atoms := datagen.Molecular((3<<20)/recSize, o.Seed)
	batch, err := datagen.MolecularBatch(atoms)
	if err != nil {
		return nil, err
	}
	// Interleave a topology/metadata block (repetitive text) every 8 data
	// blocks' worth of records.
	topo := datagen.OISTransactions(128<<10, 0.95, o.Seed+7)
	var stream []byte
	chunk := 8 * 128 << 10
	for off := 0; off < len(batch); off += chunk {
		end := off + chunk
		if end > len(batch) {
			end = len(batch)
		}
		stream = append(stream, batch[off:end]...)
		stream = append(stream, topo...)
	}
	return runAdaptive(o, scenario{
		data:     stream,
		duration: time.Duration(o.TraceSeconds * float64(time.Second)),
	})
}

func methodSeries(title string, run *adaptiveRun) Series {
	s := Series{Title: title, XLabel: "time (seconds)", YLabel: "method of compression (1=none 2=LZ 3=BWT 4=Huffman)"}
	for _, sm := range run.Samples {
		s.Points = append(s.Points, Point{X: sm.T, Y: float64(methodCode(sm.Result.Decision.Method))})
	}
	return s
}

func methodMixNotes(run *adaptiveRun) []string {
	counts := map[codec.Method]int{}
	for _, sm := range run.Samples {
		counts[sm.Result.Decision.Method]++
	}
	return []string{
		fmt.Sprintf("blocks: %d  mix: none=%d lz=%d bwt=%d huffman=%d",
			len(run.Samples), counts[codec.None], counts[codec.LempelZiv],
			counts[codec.BurrowsWheeler], counts[codec.Huffman]),
		fmt.Sprintf("wire bytes %d of %d original (%.1f%%)", run.Wire, run.Orig,
			float64(run.Wire)/float64(run.Orig)*100),
	}
}

// Figure8 plots the selected method over time for the commercial stream.
func Figure8(o Options) (*Report, error) {
	run, err := commercialAdaptive(o)
	if err != nil {
		return nil, err
	}
	notes := append(methodMixNotes(run),
		"paper shape: no compression under light load, then Lempel-Ziv, then Burrows-Wheeler at peak load")
	return &Report{
		ID: "fig8", Title: "Method selection over time, commercial data",
		Series: []Series{methodSeries("Figure 8: method of compression", run)},
		Notes:  notes,
	}, nil
}

// Figure9 plots per-block compression time for the same run.
func Figure9(o Options) (*Report, error) {
	run, err := commercialAdaptive(o)
	if err != nil {
		return nil, err
	}
	s := Series{Title: "Figure 9: time of compression", XLabel: "time (seconds)", YLabel: "compression time (microseconds)"}
	for _, sm := range run.Samples {
		s.Points = append(s.Points, Point{X: sm.T, Y: float64(sm.ChargedCompress.Microseconds())})
	}
	return &Report{
		ID: "fig9", Title: "Compression time over time, commercial data",
		Series: []Series{s},
		Notes: []string{
			"compression charged at the paper's per-method Sun-Fire speeds (see DESIGN.md)",
			fmt.Sprintf("compression busy %.2fs of %.2fs total (%.0f%%)",
				run.CompBusy.Seconds(), run.Total.Seconds(),
				100*run.CompBusy.Seconds()/run.Total.Seconds()),
		},
	}, nil
}

// Figure10 plots compressed block sizes for the same run.
func Figure10(o Options) (*Report, error) {
	run, err := commercialAdaptive(o)
	if err != nil {
		return nil, err
	}
	s := Series{Title: "Figure 10: size of compressed blocks", XLabel: "time (seconds)", YLabel: "size of block (bytes)"}
	for _, sm := range run.Samples {
		s.Points = append(s.Points, Point{X: sm.T, Y: float64(sm.Result.Info.CompLen)})
	}
	return &Report{
		ID: "fig10", Title: "Compressed block sizes, commercial data",
		Series: []Series{s},
		Notes:  []string{"uncompressed blocks sit at the (scaled) block size; compressed ones drop with method strength"},
	}, nil
}

// Figure11 plots the selected method over time for the molecular stream.
func Figure11(o Options) (*Report, error) {
	run, err := molecularAdaptive(o)
	if err != nil {
		return nil, err
	}
	notes := append(methodMixNotes(run),
		"paper shape: mostly Huffman, with Lempel-Ziv/Burrows-Wheeler islands on the repetitive portions")
	return &Report{
		ID: "fig11", Title: "Method selection over time, molecular data",
		Series: []Series{methodSeries("Figure 11: method of compression", run)},
		Notes:  notes,
	}, nil
}

// Figure12 plots compressed block sizes for the molecular stream.
func Figure12(o Options) (*Report, error) {
	run, err := molecularAdaptive(o)
	if err != nil {
		return nil, err
	}
	s := Series{Title: "Figure 12: size of compressed blocks", XLabel: "time (seconds)", YLabel: "size of block (bytes)"}
	for _, sm := range run.Samples {
		s.Points = append(s.Points, Point{X: sm.T, Y: float64(sm.Result.Info.CompLen)})
	}
	return &Report{
		ID: "fig12", Title: "Compressed block sizes, molecular data",
		Series: []Series{s},
		Notes:  []string{"molecular blocks barely shrink except on the repetitive topology portions"},
	}, nil
}
