package experiments

import (
	"fmt"
	"strings"
	"testing"

	"ccx/internal/codec"
)

func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Run(id, Quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Fatalf("report id = %q", r.ID)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	if sb.Len() == 0 {
		t.Fatalf("%s rendered nothing", id)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"ablation-blocksize", "ablation-methods", "ablation-policy",
		"ablation-probe", "ablation-thresholds", "conclusion", "fig1", "fig10",
		"fig11", "fig12", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
	if _, err := Run("nope", Quick()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func noShapeMismatch(t *testing.T, r *Report) {
	t.Helper()
	for _, n := range r.Notes {
		if strings.Contains(n, "SHAPE MISMATCH") {
			t.Errorf("%s: %s", r.ID, n)
		}
	}
}

func TestFigure1(t *testing.T) {
	r := runQuick(t, "fig1")
	if len(r.Tables) != 1 || len(r.Tables[0].Rows) != 24 {
		t.Fatalf("fig1 table shape: %d tables", len(r.Tables))
	}
}

func TestFigure2Shape(t *testing.T) {
	noShapeMismatch(t, runQuick(t, "fig2"))
}

func TestFigure3Shape(t *testing.T) {
	noShapeMismatch(t, runQuick(t, "fig3"))
}

func TestFigure4Shape(t *testing.T) {
	noShapeMismatch(t, runQuick(t, "fig4"))
}

func TestFigure5MatchesPaperRates(t *testing.T) {
	r := runQuick(t, "fig5")
	tbl := r.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Measured mean must be within 10% of the paper value for each line.
	for _, row := range tbl.Rows {
		var measured, paper float64
		if _, err := sscan(row[1], &measured); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[3], &paper); err != nil {
			t.Fatal(err)
		}
		if measured < paper*0.85 || measured > paper*1.15 {
			t.Errorf("%s: measured %.4f vs paper %.4f", row[0], measured, paper)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	noShapeMismatch(t, runQuick(t, "fig6"))
}

func TestFigure7TraceShape(t *testing.T) {
	r := runQuick(t, "fig7")
	pts := r.Series[0].Points
	if len(pts) < 10 {
		t.Fatalf("only %d points", len(pts))
	}
	max := 0.0
	for _, p := range pts {
		if p.Y > max {
			max = p.Y
		}
		if p.Y < 0 || p.Y > 20 {
			t.Fatalf("connection count %v out of range", p.Y)
		}
	}
	if max < 10 {
		t.Fatalf("trace never ramps up (max %v)", max)
	}
}

func TestFigure8AdaptationShape(t *testing.T) {
	r := runQuick(t, "fig8")
	pts := r.Series[0].Points
	if len(pts) < 5 {
		t.Fatalf("only %d blocks", len(pts))
	}
	// First block is always uncompressed (code 1).
	if pts[0].Y != 1 {
		t.Fatalf("first block code = %v", pts[0].Y)
	}
	// Under MBone load the run must reach a dictionary method.
	sawDict := false
	for _, p := range pts {
		if p.Y == 2 || p.Y == 3 {
			sawDict = true
		}
	}
	if !sawDict {
		t.Fatalf("commercial run never compressed: %+v", pts)
	}
}

func TestFigure9CompressionShare(t *testing.T) {
	r := runQuick(t, "fig9")
	if len(r.Series[0].Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Series[0].Points {
		if p.Y < 0 {
			t.Fatal("negative compression time")
		}
	}
}

func TestFigure10BlockSizes(t *testing.T) {
	r := runQuick(t, "fig10")
	for _, p := range r.Series[0].Points {
		if p.Y <= 0 || p.Y > 140000 {
			t.Fatalf("block size %v out of the paper's plot range", p.Y)
		}
	}
}

func TestFigure11MolecularShape(t *testing.T) {
	r := runQuick(t, "fig11")
	counts := map[float64]int{}
	for _, p := range r.Series[0].Points {
		counts[p.Y]++
	}
	// Paper: most molecular blocks go to Huffman once load rises; dictionary
	// methods appear only on the repetitive topology islands.
	if counts[4] == 0 {
		t.Fatalf("no Huffman blocks in molecular run: %v", counts)
	}
}

func TestFigure12MolecularSizes(t *testing.T) {
	r := runQuick(t, "fig12")
	if len(r.Series[0].Points) == 0 {
		t.Fatal("no points")
	}
}

func TestConclusionShape(t *testing.T) {
	r := runQuick(t, "conclusion")
	noShapeMismatch(t, r)
	if len(r.Tables[0].Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Tables[0].Rows))
	}
}

func TestMethodCode(t *testing.T) {
	want := map[codec.Method]int{
		codec.None: 1, codec.LempelZiv: 2, codec.BurrowsWheeler: 3,
		codec.Huffman: 4, codec.Arithmetic: 1,
	}
	for m, c := range want {
		if methodCode(m) != c {
			t.Errorf("methodCode(%v) = %d want %d", m, methodCode(m), c)
		}
	}
}

// sscan parses a single float from s.
func sscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}

func TestRenderCSV(t *testing.T) {
	r := runQuick(t, "fig7")
	var sb strings.Builder
	if err := r.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "series,") {
		t.Fatalf("csv header missing:\n%.100s", out)
	}
	lines := strings.Count(out, "\n")
	if lines < 10 {
		t.Fatalf("only %d csv lines", lines)
	}
	// Tables render too.
	r2 := runQuick(t, "fig5")
	sb.Reset()
	if err := r2.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "table,line") {
		t.Fatal("table csv header missing")
	}
}
