package encplane

import (
	"sync/atomic"

	"ccx/internal/codec"
	"ccx/internal/sampling"
)

// Frame is one immutable encoded wire frame shared across subscriber
// queues. Because the broker stamps a channel's sequence number before
// fan-out, the complete version-3 frame — header, sequence, CRC, payload —
// is identical for every subscriber in a (channel, method) class, so one
// encode serves them all.
//
// Ownership is reference counted:
//
//   - the creator holds one reference, which putCache either transfers to
//     the frame cache or releases;
//   - every queue delivery holds one reference (Retain before handing the
//     frame to a subscriber, Release after the frame is written, dropped,
//     or the subscriber is torn down);
//   - the last Release returns the backing buffer to the plane's pool.
//
// Retain after the count reached zero, and Release past zero, panic: a
// use-after-release is a refcount accounting bug, never something to limp
// past.
type Frame struct {
	refs atomic.Int32
	bufp *[]byte // pooled backing array; b is its prefix
	b    []byte
	ch   *Channel

	seq    uint64
	method codec.Method // requested method (cache key); Info.Method is the wire truth
	info   codec.BlockInfo

	// waitSeen gates the queue-wait observation: the frame's time in queue
	// is attributed once per class (by the first dequeuer), not once per
	// subscriber, so latency histograms and byte gauges stay honest.
	waitSeen atomic.Bool
}

// Bytes returns the encoded frame. The slice is immutable and valid only
// while the caller holds a reference.
func (f *Frame) Bytes() []byte { return f.b }

// Len returns the wire size of the frame.
func (f *Frame) Len() int { return len(f.b) }

// Seq returns the channel sequence number stamped into the frame.
func (f *Frame) Seq() uint64 { return f.seq }

// Info returns the encode outcome (method after any expansion fallback,
// payload sizes, sequence).
func (f *Frame) Info() codec.BlockInfo { return f.info }

// RequestedMethod returns the method the frame was encoded for — the cache
// key, before any expansion fallback. Consumers compare it against their own
// current selection to detect a migration that outran their queue backlog.
func (f *Frame) RequestedMethod() codec.Method { return f.method }

// FirstWait reports true exactly once across all holders — the first
// dequeuer observes the shared frame's queue wait on behalf of its class.
func (f *Frame) FirstWait() bool { return f.waitSeen.CompareAndSwap(false, true) }

// Retain adds a reference. The caller must already hold one.
func (f *Frame) Retain() {
	if f.refs.Add(1) <= 1 {
		panic("encplane: Retain on released frame")
	}
}

// Release drops one reference; the last one recycles the buffer.
func (f *Frame) Release() {
	switch n := f.refs.Add(-1); {
	case n == 0:
		f.ch.reclaim(f)
	case n < 0:
		panic("encplane: Release past zero")
	}
}

// newFrame wraps an encoded frame held in a pooled buffer the caller owns.
// The returned frame holds one (creator) reference.
func (c *Channel) newFrame(bufp *[]byte, b []byte, seq uint64, m codec.Method, info codec.BlockInfo) *Frame {
	f := &Frame{bufp: bufp, b: b, ch: c, seq: seq, method: m, info: info}
	f.refs.Store(1)
	c.p.framesLive.Add(1)
	c.noteBytes(int64(len(b)))
	return f
}

// copyFrame is newFrame for a buffer the caller does NOT own (the encode
// pipeline recycles its scratch right after send returns): the bytes are
// copied into a pool-backed buffer first.
func (c *Channel) copyFrame(b []byte, seq uint64, m codec.Method, info codec.BlockInfo) *Frame {
	bufp := c.p.bufs.Get().(*[]byte)
	buf := append((*bufp)[:0], b...)
	*bufp = buf
	return c.newFrame(bufp, buf, seq, m, info)
}

// reclaim runs on the final Release: undo byte accounting, poison the
// frame, return the buffer to the pool.
func (c *Channel) reclaim(f *Frame) {
	c.p.framesLive.Add(-1)
	c.noteBytes(-int64(len(f.b)))
	bufp := f.bufp
	f.bufp, f.b = nil, nil // poison: Bytes after the last Release is empty
	if bufp != nil {
		c.p.bufs.Put(bufp)
	}
}

// noteBytes tracks the channel's live shared-frame bytes: each distinct
// (block, method) frame counts once, however many subscriber queues hold it.
func (c *Channel) noteBytes(delta int64) {
	n := c.liveBytes.Add(delta)
	c.queuedBytes.Set(n)
	c.queuedHWM.SetMax(n)
	c.p.liveBytes.Add(delta)
}

// cacheKey identifies a frame: the stamped sequence number plus the
// requested method (the encode outcome for a given pair is deterministic,
// expansion fallback included).
type cacheKey struct {
	seq uint64
	m   codec.Method
}

// frameCache retains recently encoded frames, bounded by total wire bytes,
// evicting oldest-inserted first (sequence numbers are monotonic, so FIFO
// is age order). It holds one reference per entry. Guarded by Channel.mu.
type frameCache struct {
	maxBytes int64
	bytes    int64
	entries  map[cacheKey]*Frame
	fifo     []cacheKey
}

func (fc *frameCache) get(seq uint64, m codec.Method) (*Frame, bool) {
	f, ok := fc.entries[cacheKey{seq, m}]
	return f, ok
}

// put inserts f, transferring the caller's reference to the cache, and
// returns the frames evicted to stay within budget. When f cannot be
// retained (duplicate key, zero budget, or alone over budget) it is
// returned among the evicted, i.e. the reference comes straight back.
func (fc *frameCache) put(f *Frame) (evicted []*Frame) {
	k := cacheKey{f.seq, f.method}
	if _, dup := fc.entries[k]; dup || int64(f.Len()) > fc.maxBytes {
		return []*Frame{f}
	}
	if fc.entries == nil {
		fc.entries = make(map[cacheKey]*Frame)
	}
	fc.entries[k] = f
	fc.fifo = append(fc.fifo, k)
	fc.bytes += int64(f.Len())
	for fc.bytes > fc.maxBytes && len(fc.fifo) > 0 {
		old := fc.fifo[0]
		fc.fifo = fc.fifo[1:]
		e := fc.entries[old]
		delete(fc.entries, old)
		fc.bytes -= int64(e.Len())
		evicted = append(evicted, e)
	}
	return evicted
}

// trimTo evicts oldest-first until retained bytes fit budget, returning
// the evicted frames for release outside the channel lock (the pressure
// shrink path; put's eviction loop handles the steady state).
func (fc *frameCache) trimTo(budget int64) (evicted []*Frame) {
	for fc.bytes > budget && len(fc.fifo) > 0 {
		old := fc.fifo[0]
		fc.fifo = fc.fifo[1:]
		e := fc.entries[old]
		delete(fc.entries, old)
		fc.bytes -= int64(e.Len())
		evicted = append(evicted, e)
	}
	return evicted
}

// purge empties the cache, returning every retained frame for release.
func (fc *frameCache) purge() []*Frame {
	out := make([]*Frame, 0, len(fc.entries))
	for _, f := range fc.entries {
		out = append(out, f)
	}
	fc.entries, fc.fifo, fc.bytes = nil, nil, 0
	return out
}

// maxProbes bounds the per-channel probe cache. Probe results are a few
// dozen bytes, so the window comfortably outlasts any replay ring.
const maxProbes = 4096

// probeCache retains sampling probes by sequence number so one 4 KB LZ
// probe serves live fan-out and every resume replay of the same block.
// Guarded by Channel.mu.
type probeCache struct {
	entries map[uint64]sampling.ProbeResult
	fifo    []uint64
}

func (pc *probeCache) get(seq uint64) (sampling.ProbeResult, bool) {
	p, ok := pc.entries[seq]
	return p, ok
}

func (pc *probeCache) put(seq uint64, p sampling.ProbeResult) {
	if _, dup := pc.entries[seq]; dup {
		return
	}
	if pc.entries == nil {
		pc.entries = make(map[uint64]sampling.ProbeResult)
	}
	pc.entries[seq] = p
	pc.fifo = append(pc.fifo, seq)
	for len(pc.fifo) > maxProbes {
		delete(pc.entries, pc.fifo[0])
		pc.fifo = pc.fifo[1:]
	}
}
