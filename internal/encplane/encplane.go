// Package encplane is the broker's shared encode plane: it groups a
// channel's subscribers into method-equivalence classes (same channel, same
// currently-selected compression method) and encodes each (block, method)
// pair exactly once, fanning the resulting immutable, reference-counted
// frame out to every queue in the class.
//
// The paper selects a compression method per *path*, and the naive broker
// realization runs the whole engine — probe, selection, encode — once per
// subscriber. But the expensive parts don't depend on the subscriber at
// all: the 4 KB sampling probe depends only on the block, and the encoded
// v3 frame depends only on (block, method, sequence), because sequence
// numbers are per channel. Only the *selection* is per path (it consumes
// the subscriber's own goodput EWMA), and selection is a handful of float
// comparisons. So the plane splits the loop:
//
//	per block:              one probe, shared by every subscriber;
//	per (block, method):    one encode, one refcounted frame;
//	per subscriber:         selection, queueing, send, goodput feedback.
//
// Broker encode CPU therefore scales with the number of distinct methods in
// use (at most the registry size), not with subscriber count — the property
// cmd/ccswarm measures.
//
// Distinct (block, method) pairs encode concurrently on a per-channel
// core.Pipeline whose in-order sequencer preserves the channel's delivery
// order: each member sees a subsequence of the channel's blocks, so every
// subscriber's sequence stream stays strictly monotonic through class
// migrations. Encoded frames also land in a bounded per-channel cache keyed
// by (sequence, method), which resume replays hit instead of re-encoding —
// a reconnect storm after a network blip costs one encode per method, not
// one per returning subscriber.
package encplane

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/metrics"
	"ccx/internal/obs"
	"ccx/internal/sampling"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

// DefaultCacheBytes bounds each channel's encoded-frame cache when the
// configuration leaves it zero. It matches the broker's default replay-ring
// byte budget, so a resume inside the replay window usually hits the cache.
const DefaultCacheBytes = 8 << 20

// Config assembles a Plane.
type Config struct {
	// Engine supplies the registry, clock, probe size, and speed scale the
	// plane's encode pipelines run with. Telemetry is ignored (the plane
	// emits its own encplane.* instrumentation); per-subscriber engines
	// stay outside the plane, owned by the broker.
	Engine core.Config
	// Workers sets each channel pipeline's encode pool (<= 0: GOMAXPROCS).
	Workers int
	// CacheBytes bounds each channel's frame cache (0 = DefaultCacheBytes).
	CacheBytes int64
	// Metrics receives encplane.* and chan.<name>.* instrumentation
	// (nil = a private registry).
	Metrics *metrics.Registry
	// Trace receives one record per encoded frame (stream "encplane"),
	// carrying the class label and fan-out width. nil disables.
	Trace *obs.DecisionLog
	// Tracer records distributed-trace encode spans for blocks whose frame
	// annotation carries a trace context (and cache-hit spans when a
	// replay or migration is served from the frame cache). nil disables.
	Tracer *tracing.Tracer
	// Logf logs encode failures (nil = silent).
	Logf func(format string, args ...any)
	// PipeWait, when non-nil, observes each encoded block's pipeline
	// head-of-line wait — the overload governor's CPU-saturation signal
	// (governor.NotePipeWait). Called on the sequencer; must be cheap.
	PipeWait func(time.Duration)
}

// Plane owns the per-channel encode state. Create with New.
type Plane struct {
	reg    *codec.Registry
	smp    *sampling.Sampler
	met    *metrics.Registry
	trace  *obs.DecisionLog
	tracer *tracing.Tracer
	logf   func(string, ...any)

	engine     *core.Engine // shared by every channel pipeline
	workers    int
	cacheBytes int64        // configured per-channel cache budget
	effCache   atomic.Int64 // pressure-scaled budget new channels start from
	pipeWait   func(time.Duration)
	liveBytes  atomic.Int64 // wire bytes across all live shared frames

	bufs sync.Pool // *[]byte frame buffers, shared across channels

	encodes    *metrics.Counter
	encBytes   *metrics.Counter
	deliveries *metrics.Counter
	// placementDel breaks deliveries down by the receiving member's
	// compression placement (encplane.placement.<name>) — the ccstat "plc"
	// column and ccswarm's per-placement report read these.
	placementDel [selector.NumPlacements]*metrics.Counter
	hits         *metrics.Counter
	misses       *metrics.Counter
	evictions    *metrics.Counter
	migrations   *metrics.Counter
	errors       *metrics.Counter
	rawFast      *metrics.Counter
	framesLive   *metrics.Gauge
	encLat       *metrics.Histogram

	mu     sync.Mutex
	chans  map[string]*Channel
	closed bool
}

// New validates cfg and builds a Plane.
func New(cfg Config) (*Plane, error) {
	if cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("encplane: negative cache budget %d", cfg.CacheBytes)
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	ecfg := cfg.Engine
	ecfg.Telemetry = core.Telemetry{}
	engine, err := core.NewEngine(ecfg)
	if err != nil {
		return nil, fmt.Errorf("encplane: engine: %w", err)
	}
	met := cfg.Metrics
	if met == nil {
		met = metrics.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p := &Plane{
		reg: engine.Registry(),
		smp: &sampling.Sampler{
			ProbeSize:  ecfg.ProbeSize,
			SpeedScale: ecfg.SpeedScale,
			Now:        ecfg.Now,
		},
		met:        met,
		trace:      cfg.Trace,
		tracer:     cfg.Tracer,
		logf:       logf,
		engine:     engine,
		workers:    cfg.Workers,
		cacheBytes: cfg.CacheBytes,
		pipeWait:   cfg.PipeWait,

		encodes:    met.Counter("encplane.encodes"),
		encBytes:   met.Counter("encplane.encoded_bytes"),
		deliveries: met.Counter("encplane.deliveries"),
		hits:       met.Counter("encplane.cache_hits"),
		misses:     met.Counter("encplane.cache_misses"),
		evictions:  met.Counter("encplane.cache_evictions"),
		migrations: met.Counter("encplane.migrations"),
		errors:     met.Counter("encplane.errors"),
		rawFast:    met.Counter("encplane.raw_fastpath"),
		framesLive: met.Gauge("encplane.frames_live"),
		encLat:     met.Histogram("encplane.encode_seconds", metrics.LatencyBuckets),

		chans: make(map[string]*Channel),
	}
	for pl := selector.Placement(0); pl < selector.NumPlacements; pl++ {
		p.placementDel[pl] = met.Counter(fmt.Sprintf("encplane.placement.%s", pl))
	}
	p.bufs.New = func() any { return new([]byte) }
	p.effCache.Store(cfg.CacheBytes)
	return p, nil
}

// LiveFrames reports how many shared frames currently hold references —
// zero after every member left, the cache was purged, and all deliveries
// were released. The churn race test asserts on this.
func (p *Plane) LiveFrames() int64 { return p.framesLive.Value() }

// LiveBytes reports the total wire bytes held by live shared frames across
// every channel — queued, cached, or in flight. The overload governor's
// queued-bytes source sums this with the broker's replay rings.
func (p *Plane) LiveBytes() int64 { return p.liveBytes.Load() }

// SetCacheScale rescales every channel's frame-cache budget to
// configured*factor, clamped below at floor — the memory-pressure
// degradation knob. Shrinking evicts immediately (oldest first); factor 1
// restores the configured budget. Channels created later inherit the
// current scaled budget.
func (p *Plane) SetCacheScale(factor float64, floor int64) {
	if factor <= 0 {
		factor = 1
	}
	budget := int64(float64(p.cacheBytes) * factor)
	if budget < floor {
		budget = floor
	}
	if budget > p.cacheBytes {
		budget = p.cacheBytes
	}
	p.effCache.Store(budget)
	p.mu.Lock()
	chans := make([]*Channel, 0, len(p.chans))
	for _, c := range p.chans {
		chans = append(chans, c)
	}
	p.mu.Unlock()
	for _, c := range chans {
		c.mu.Lock()
		c.cache.maxBytes = budget
		evicted := c.cache.trimTo(budget)
		c.mu.Unlock()
		for _, f := range evicted {
			p.evictions.Inc()
			f.Release()
		}
	}
}

// Channel returns (creating on first use) the named channel's encode state.
func (p *Plane) Channel(name string) *Channel {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.chans[name]; ok {
		return c
	}
	c := &Channel{
		p:            p,
		name:         name,
		members:      make(map[*Member]struct{}),
		classCount:   make(map[classKey]int),
		classesGauge: p.met.Gauge(fmt.Sprintf("chan.%s.classes", name)),
		queuedBytes:  p.met.Gauge(fmt.Sprintf("chan.%s.queued_bytes", name)),
		queuedHWM:    p.met.Gauge(fmt.Sprintf("chan.%s.queued_bytes_hwm", name)),
	}
	c.cache.maxBytes = p.effCache.Load()
	send := func(frame []byte) (time.Duration, error) {
		// Copy out of the pipeline's recyclable scratch into a refcounted
		// buffer; the sequencer's onBlock below fans it out.
		job := c.peekPending()
		c.inflight = c.copyFrame(frame, job.seq, job.method, codec.BlockInfo{})
		return 0, nil
	}
	onBlock := func(r core.BlockResult) {
		f := c.inflight
		c.inflight = nil
		f.info = r.Info
		c.fanOut(f, c.popPending(), r)
	}
	c.pipe = core.NewPipeline(p.engine, send, p.workers, onBlock)
	p.chans[name] = c
	return c
}

// Close flushes and stops every channel pipeline and purges the frame
// caches. In-flight blocks are still delivered to their classes before the
// corresponding pipelines wind down.
func (p *Plane) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	chans := make([]*Channel, 0, len(p.chans))
	for _, c := range p.chans {
		chans = append(chans, c)
	}
	p.mu.Unlock()
	for _, c := range chans {
		c.close()
	}
	return nil
}

// Channel is one named channel's encode state: membership classes, the
// encode pipeline, and the frame cache.
type Channel struct {
	p    *Plane
	name string

	// mu guards membership, the frame cache, and the probe cache. It is a
	// leaf lock: nothing is called while holding it that can block on the
	// pipeline, so publishers and the delivery sequencer never deadlock
	// against joins, leaves, or migrations.
	mu         sync.Mutex
	members    map[*Member]struct{}
	classCount map[classKey]int // members per (method, placement); len = live classes
	cache      frameCache
	probes     probeCache

	// pipeMu serializes pipeline submissions (Publish) against close —
	// core.Pipeline's Submit/Close are single-owner calls. Membership
	// operations never take it.
	pipeMu     sync.Mutex
	pipeClosed bool
	pipe       *core.Pipeline

	// pending is the FIFO of job contexts, appended before each pipeline
	// submission and consumed by the sequencer in the same order — valid
	// because the sequencer emits strictly in submission order and an
	// errored job permanently latches the pipeline (sends stay a prefix of
	// submissions).
	pendMu   sync.Mutex
	pending  []pendingJob
	inflight *Frame // set by send, consumed by onBlock; sequencer-local

	// jobs counts pipeline encode jobs submitted but not yet fanned out —
	// incremented per submission, decremented on the sequencer only after
	// every class delivery for the job has been offered. It fences the raw
	// fast path: publishRaw may bypass the pipeline only when jobs == 0,
	// because only then is "deliver now" guaranteed to land after every
	// earlier block in every member queue.
	jobs atomic.Int64

	liveBytes    atomic.Int64
	classesGauge *metrics.Gauge // chan.<name>.classes
	queuedBytes  *metrics.Gauge // chan.<name>.queued_bytes (once per class)
	queuedHWM    *metrics.Gauge // chan.<name>.queued_bytes_hwm
}

// classKey identifies one equivalence class: members that currently share
// both a compression method and a placement. Frames depend only on the
// method — a receiver-placement member and a broker-placement member both
// sitting at None share the same encoded bytes — so encode jobs are still
// grouped per method (one encode per distinct method per block), while the
// class structure, the chan.<name>.classes gauge, and delivery accounting
// are placement-aware.
type classKey struct {
	method    codec.Method
	placement selector.Placement
}

// jobMember snapshots one member and its placement at publish time, so
// fan-out accounting never races later migrations.
type jobMember struct {
	mb        *Member
	placement selector.Placement
}

// pendingJob carries one (block, method) encode's fan-out context.
type pendingJob struct {
	seq     uint64
	method  codec.Method
	members []jobMember
	data    []byte
	probe   sampling.ProbeResult
	at      time.Time
	// anno is the block's frame annotation (propagated into every class's
	// encoded frame) and tc its parsed trace context, parsed once per
	// publish rather than once per class.
	anno []byte
	tc   tracing.Context
}

func (c *Channel) pushPending(j pendingJob) {
	c.pendMu.Lock()
	c.pending = append(c.pending, j)
	c.pendMu.Unlock()
}

// popPendingTail undoes a pushPending whose submission was refused.
func (c *Channel) popPendingTail() {
	c.pendMu.Lock()
	c.pending = c.pending[:len(c.pending)-1]
	c.pendMu.Unlock()
}

func (c *Channel) peekPending() pendingJob {
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	return c.pending[0]
}

func (c *Channel) popPending() pendingJob {
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	j := c.pending[0]
	c.pending[0] = pendingJob{}
	c.pending = c.pending[1:]
	return j
}

// Delivery hands one shared frame to a member's queue. The receiver owns
// one frame reference and must Release it exactly once — after writing,
// dropping, or tearing down.
//
// The frame was encoded with the method the member had selected at publish
// time. A consumer that has since migrated (its queue backlog outlived a
// selection change) re-evaluates at dequeue and swaps the frame through
// EncodeCached — so selection timing is identical to a per-subscriber
// encode loop, while the steady state still encodes once per class.
type Delivery struct {
	Frame *Frame
	// Data is the original block, shared read-only with the replay ring;
	// it feeds EncodeCached when the consumer migrated after publish.
	Data []byte
	// Probe is the block's shared sampling probe; combined with the
	// member's own goodput monitor it reproduces the paper's per-path
	// selection inputs (core.Engine.DecideProbed).
	Probe sampling.ProbeResult
	// At is when the block was published (queue-wait accounting).
	At time.Time
	// Anno is the block's frame annotation and TC its parsed trace
	// context: consumers record queue/write spans against TC and hand Anno
	// back to EncodeCached so a post-migration re-encode keeps the trace.
	Anno []byte
	TC   tracing.Context
}

// DeliverFunc enqueues one delivery. It must not block; returning false
// refuses the delivery and returns the frame reference to the plane.
type DeliverFunc func(Delivery) bool

// Member is one subscriber's membership in a channel's class structure.
type Member struct {
	ch        *Channel
	deliver   DeliverFunc
	method    codec.Method       // guarded by ch.mu
	placement selector.Placement // guarded by ch.mu
	left      bool               // guarded by ch.mu
}

// Join adds a member with an initial method (the paper's first-block
// convention is None) in the publisher-placement class — the pre-placement
// behavior. Publishes after Join include the member; blocks already in
// flight do not — they predate the join and, when the caller is resuming,
// are covered by the replay window instead.
func (c *Channel) Join(m codec.Method, deliver DeliverFunc) *Member {
	return c.JoinPlaced(m, selector.PlacementPublisher, deliver)
}

// JoinPlaced is Join with an explicit initial placement class.
func (c *Channel) JoinPlaced(m codec.Method, pl selector.Placement, deliver DeliverFunc) *Member {
	mb := &Member{ch: c, deliver: deliver, method: m, placement: pl}
	c.mu.Lock()
	c.members[mb] = struct{}{}
	c.classDelta(classKey{m, pl}, +1)
	c.mu.Unlock()
	return mb
}

// Method returns the member's current class method.
func (m *Member) Method() codec.Method {
	m.ch.mu.Lock()
	defer m.ch.mu.Unlock()
	return m.method
}

// Placement returns the member's current class placement.
func (m *Member) Placement() selector.Placement {
	m.ch.mu.Lock()
	defer m.ch.mu.Unlock()
	return m.placement
}

// Migrate moves the member to a new method class, keeping its placement.
// The move is atomic with respect to publishes: each publish snapshots
// membership once, so a migrating member lands in exactly one class per
// block — no block is duplicated or dropped across the migration.
func (m *Member) Migrate(to codec.Method) {
	c := m.ch
	c.mu.Lock()
	pl := m.placement
	c.mu.Unlock()
	m.MigratePlaced(to, pl)
}

// MigratePlaced moves the member to the (method, placement) class, with the
// same atomicity as Migrate.
func (m *Member) MigratePlaced(to codec.Method, pl selector.Placement) {
	c := m.ch
	c.mu.Lock()
	if m.left || (m.method == to && m.placement == pl) {
		c.mu.Unlock()
		return
	}
	from := classKey{m.method, m.placement}
	m.method = to
	m.placement = pl
	c.classDelta(from, -1)
	c.classDelta(classKey{to, pl}, +1)
	c.mu.Unlock()
	c.p.migrations.Inc()
}

// Leave removes the member. Frames already delivered to its queue remain
// owned by the caller (release them on teardown); publishes snapshotted
// before Leave may still offer deliveries, which the member's DeliverFunc
// must refuse.
func (m *Member) Leave() {
	c := m.ch
	c.mu.Lock()
	if m.left {
		c.mu.Unlock()
		return
	}
	m.left = true
	delete(c.members, m)
	c.classDelta(classKey{m.method, m.placement}, -1)
	c.mu.Unlock()
}

// classDelta maintains the per-class membership count and the
// chan.<name>.classes gauge incrementally — O(1) per join, migration, and
// leave, so a 10k-subscriber migration storm never rescans membership.
// Caller holds c.mu.
func (c *Channel) classDelta(k classKey, d int) {
	n := c.classCount[k] + d
	if n <= 0 {
		delete(c.classCount, k)
	} else {
		c.classCount[k] = n
	}
	c.classesGauge.Set(int64(len(c.classCount)))
}

// Publish fans one stamped block out: snapshot the method classes, probe
// the block once, and submit one pre-decided encode job per distinct
// method. Delivery happens asynchronously on the pipeline's in-order
// sequencer. The caller serializes Publish per channel (the broker holds
// its channel-state lock), which satisfies the pipeline's single-owner
// submit contract.
//
// Jobs group by method, not by full (method, placement) class: classes
// that differ only in placement produce byte-identical frames, so they
// share one encode and are told apart only in delivery accounting.
func (c *Channel) Publish(data []byte, seq uint64) {
	c.PublishAnno(data, seq, nil)
}

// PublishAnno is Publish for a block carrying a frame annotation: anno is
// stamped into every class's encoded frame and handed to consumers with
// each delivery, so a publisher's trace context survives the broker hop.
func (c *Channel) PublishAnno(data []byte, seq uint64, anno []byte) {
	c.mu.Lock()
	if len(c.members) == 0 {
		c.mu.Unlock()
		return
	}
	// rawOnly: every member sits in the (None, receiver) class — the whole
	// channel ships raw frames for downstream compression, so the encode
	// pipeline would add a hop (copy into scratch, sequencer handoff) for
	// an encode that is pure framing.
	rawOnly := true
	classes := make(map[codec.Method][]jobMember, 4)
	for m := range c.members {
		if m.method != codec.None || m.placement != selector.PlacementReceiver {
			rawOnly = false
		}
		classes[m.method] = append(classes[m.method], jobMember{m, m.placement})
	}
	c.mu.Unlock()

	// The probe still runs on the fast path: auto-placement members that
	// currently sit offloaded need it at dequeue to decide a flip back.
	probe := c.ProbeFor(data, seq)
	at := time.Now()
	var tc tracing.Context
	if len(anno) > 0 {
		tc = tracing.ParseAnno(anno)
	}

	if rawOnly && c.jobs.Load() == 0 {
		// Receiver-raw fast path: frame inline and deliver synchronously,
		// skipping the encode shard entirely. jobs == 0 guarantees every
		// earlier pipeline block already reached the member queues, so
		// per-member sequence order survives the bypass; the caller
		// serializes publishes per channel, so later pipeline submissions
		// sequence after this delivery too.
		c.publishRaw(data, seq, anno, classes[codec.None], probe, at, tc)
		return
	}

	c.pipeMu.Lock()
	defer c.pipeMu.Unlock()
	if c.pipeClosed {
		return
	}
	for method, members := range classes {
		c.pushPending(pendingJob{
			seq: seq, method: method, members: members,
			data: data, probe: probe, at: at, anno: anno, tc: tc,
		})
		c.jobs.Add(1)
		if err := c.pipe.SubmitMethodAnno(data, method, seq, anno, tc); err != nil {
			c.popPendingTail()
			c.jobs.Add(-1)
			c.p.errors.Inc()
			c.p.logf("encplane: %s: submit %s: %v", c.name, method, err)
			return
		}
	}
}

// publishRaw is the receiver-raw fast path: build the None frame on the
// publishing goroutine and offer it to every (None, receiver) member
// immediately — no pipeline submit, no sequencer handoff, no extra copy.
// The frame still lands in the cache, so resume replays hit it exactly as
// they would a pipeline-encoded frame. Holding pipeMu keeps the bypass
// ordered against close (close purges the cache after we park the frame).
func (c *Channel) publishRaw(data []byte, seq uint64, anno []byte, members []jobMember, probe sampling.ProbeResult, at time.Time, tc tracing.Context) {
	c.pipeMu.Lock()
	defer c.pipeMu.Unlock()
	if c.pipeClosed {
		return
	}
	bufp := c.p.bufs.Get().(*[]byte)
	frame, info, err := codec.AppendFrameOpts((*bufp)[:0], c.p.reg, codec.None, data, codec.FrameOpts{Seq: seq, HasSeq: true, Anno: anno})
	if err != nil {
		c.p.bufs.Put(bufp)
		c.p.errors.Inc()
		c.p.logf("encplane: %s: raw frame: %v", c.name, err)
		return
	}
	*bufp = frame
	f := c.newFrame(bufp, frame, seq, codec.None, info)
	c.p.encodes.Inc()
	c.p.misses.Inc()
	c.p.encBytes.Add(int64(len(frame)))
	c.p.rawFast.Inc()

	delivered := 0
	for _, jm := range members {
		f.Retain()
		if jm.mb.deliver(Delivery{Frame: f, Data: data, Probe: probe, At: at, Anno: anno, TC: tc}) {
			delivered++
		} else {
			f.Release()
		}
	}
	c.p.deliveries.Add(int64(delivered))
	if delivered > 0 {
		c.p.placementDel[selector.PlacementReceiver].Add(int64(delivered))
	}
	if tr := c.p.tracer; tr != nil && tc.Valid() {
		tr.Record(tracing.Span{
			Trace:      tc.Trace,
			Seq:        seq,
			Stream:     "encplane",
			Stage:      tracing.StageEncode,
			Start:      time.Now().UnixNano(),
			OriginWall: tc.WallNs,
			Method:     info.Method.String(),
			Class:      c.name + "/" + codec.None.String(),
			Bytes:      len(frame),
		})
	}
	if c.p.trace != nil {
		c.p.trace.Add(obs.Record{
			Stream:    "encplane",
			Block:     int(seq),
			BlockLen:  len(data),
			Method:    info.Method.String(),
			Placement: selector.PlacementReceiver.String(),
			Reason:    fmt.Sprintf("raw fan-out for %d subscriber(s) (fast path, encode shard skipped)", len(members)),
			WireBytes: len(frame),
			Ratio:     info.Ratio(),
			FrameSeq:  seq,
			Class:     c.name + "/" + codec.None.String(),
			ClassSubs: len(members),
			Workers:   1,
			Trace:     tc.Trace,
		})
	}
	c.putCache(f) // transfers the creator reference
}

// fanOut runs on the pipeline sequencer: account the fresh frame, deliver
// it to every class member, and park it in the cache for resume replays.
// The jobs decrement comes last — only once every delivery has been
// offered may the raw fast path consider the pipeline quiescent.
func (c *Channel) fanOut(f *Frame, job pendingJob, r core.BlockResult) {
	defer c.jobs.Add(-1)
	c.p.encodes.Inc()
	c.p.misses.Inc()
	c.p.encBytes.Add(int64(f.Len()))
	c.p.encLat.ObserveDuration(r.CompressTime)
	if c.p.pipeWait != nil {
		c.p.pipeWait(r.PipelineWait)
	}

	delivered := 0
	var byPlacement [selector.NumPlacements]int64
	for _, jm := range job.members {
		f.Retain()
		if jm.mb.deliver(Delivery{Frame: f, Data: job.data, Probe: job.probe, At: job.at, Anno: job.anno, TC: job.tc}) {
			delivered++
			byPlacement[jm.placement]++
		} else {
			f.Release()
		}
	}
	c.p.deliveries.Add(int64(delivered))
	for pl, n := range byPlacement {
		if n > 0 {
			c.p.placementDel[pl].Add(n)
		}
	}
	if tr := c.p.tracer; tr != nil && job.tc.Valid() {
		tr.Record(tracing.Span{
			Trace:      job.tc.Trace,
			Seq:        job.seq,
			Stream:     "encplane",
			Stage:      tracing.StageEncode,
			Start:      time.Now().UnixNano() - r.CompressTime.Nanoseconds(),
			Dur:        r.CompressTime.Nanoseconds(),
			OriginWall: job.tc.WallNs,
			Method:     f.info.Method.String(),
			Class:      c.name + "/" + job.method.String(),
			Bytes:      f.Len(),
		})
	}
	if c.p.trace != nil {
		c.p.trace.Add(obs.Record{
			Stream:    "encplane",
			Block:     int(job.seq),
			BlockLen:  len(job.data),
			Method:    f.info.Method.String(),
			Placement: placementSpread(byPlacement),
			Reason:    fmt.Sprintf("encoded once for %d subscriber(s)", len(job.members)),
			WireBytes: f.Len(),
			Ratio:     f.info.Ratio(),
			EncodeNs:  r.CompressTime.Nanoseconds(),
			Fallback:  f.info.Fallback,
			FrameSeq:  job.seq,
			Class:     c.name + "/" + job.method.String(),
			ClassSubs: len(job.members),
			Workers:   r.Workers,
			Trace:     job.tc.Trace,
		})
	}
	c.putCache(f) // transfers the creator reference
}

// EncodeCached returns the (seq, method) frame, serving from the cache when
// possible and encoding synchronously otherwise. The caller owns one frame
// reference. Resume replays and post-migration dequeues use this: however
// many subscribers need the same (block, method) pair, it is encoded at most
// once while the frame stays cached.
func (c *Channel) EncodeCached(data []byte, seq uint64, m codec.Method, anno []byte) (*Frame, error) {
	var tc tracing.Context
	if len(anno) > 0 {
		tc = tracing.ParseAnno(anno)
	}
	c.mu.Lock()
	if f, ok := c.cache.get(seq, m); ok {
		f.Retain()
		c.mu.Unlock()
		c.p.hits.Inc()
		if tr := c.p.tracer; tr != nil && tc.Valid() {
			tr.Record(tracing.Span{
				Trace:      tc.Trace,
				Seq:        seq,
				Stream:     "encplane",
				Stage:      tracing.StageEncode,
				Start:      time.Now().UnixNano(),
				OriginWall: tc.WallNs,
				Method:     f.info.Method.String(),
				Class:      c.name + "/" + m.String(),
				CacheHit:   true,
				Bytes:      f.Len(),
			})
		}
		if c.p.trace != nil {
			c.p.trace.Add(obs.Record{
				Stream:   "encplane",
				Method:   f.info.Method.String(),
				Reason:   "replay served from frame cache",
				FrameSeq: seq,
				Class:    c.name + "/" + m.String(),
				CacheHit: true,
			})
		}
		return f, nil
	}
	c.mu.Unlock()

	bufp := c.p.bufs.Get().(*[]byte)
	start := time.Now()
	frame, info, err := codec.AppendFrameOpts((*bufp)[:0], c.p.reg, m, data, codec.FrameOpts{Seq: seq, HasSeq: true, Anno: anno})
	if err != nil {
		c.p.bufs.Put(bufp)
		c.p.errors.Inc()
		return nil, err
	}
	*bufp = frame
	c.p.encodes.Inc()
	c.p.misses.Inc()
	c.p.encBytes.Add(int64(len(frame)))
	c.p.encLat.ObserveDuration(time.Since(start))
	if tr := c.p.tracer; tr != nil && tc.Valid() {
		tr.Record(tracing.Span{
			Trace:      tc.Trace,
			Seq:        seq,
			Stream:     "encplane",
			Stage:      tracing.StageEncode,
			Start:      start.UnixNano(),
			Dur:        time.Since(start).Nanoseconds(),
			OriginWall: tc.WallNs,
			Method:     info.Method.String(),
			Class:      c.name + "/" + m.String(),
			Bytes:      len(frame),
		})
	}
	f := c.newFrame(bufp, frame, seq, m, info)
	f.Retain()    // the caller's reference
	c.putCache(f) // transfers the creator reference
	return f, nil
}

// LiveBytes reports this channel's live shared-frame wire bytes. Frame
// accounting updates the channel and plane totals together (noteBytes), so
// per-channel values summed across channels equal Plane.LiveBytes exactly —
// the property the broker's per-shard governor ledgers rest on.
func (c *Channel) LiveBytes() int64 { return c.liveBytes.Load() }

// ProbeFor returns the block's sampling probe, computing and caching it on
// first use so one probe serves every class and every replay of the block.
func (c *Channel) ProbeFor(data []byte, seq uint64) sampling.ProbeResult {
	c.mu.Lock()
	if p, ok := c.probes.get(seq); ok {
		c.mu.Unlock()
		return p
	}
	c.mu.Unlock()
	p := c.p.smp.Probe(data)
	c.mu.Lock()
	c.probes.put(seq, p)
	c.mu.Unlock()
	return p
}

// placementSpread labels one fan-out's placement mix for trace records: the
// single placement every delivery shared, or "mixed" when one encode served
// classes of more than one placement.
func placementSpread(byPlacement [selector.NumPlacements]int64) string {
	sole := -1
	for pl, n := range byPlacement {
		if n == 0 {
			continue
		}
		if sole >= 0 {
			return "mixed"
		}
		sole = pl
	}
	if sole < 0 {
		return ""
	}
	return selector.Placement(sole).String()
}

// putCache hands the caller's frame reference to the cache (or straight
// back to the pool if the cache refuses it).
func (c *Channel) putCache(f *Frame) {
	c.mu.Lock()
	evicted := c.cache.put(f)
	c.mu.Unlock()
	for _, e := range evicted {
		if e != f {
			c.p.evictions.Inc()
		}
		e.Release()
	}
}

// close flushes the pipeline (in-flight blocks still reach their classes)
// and purges the cache.
func (c *Channel) close() {
	c.pipeMu.Lock()
	closed := c.pipeClosed
	c.pipeClosed = true
	c.pipeMu.Unlock()
	if closed {
		return
	}
	if err := c.pipe.Close(); err != nil {
		c.p.logf("encplane: %s: close: %v", c.name, err)
	}
	c.mu.Lock()
	purged := c.cache.purge()
	c.mu.Unlock()
	for _, f := range purged {
		f.Release()
	}
}
