package encplane

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/metrics"
	"ccx/internal/selector"
)

var allMethods = []codec.Method{
	codec.None, codec.Huffman, codec.Arithmetic, codec.LempelZiv, codec.BurrowsWheeler,
}

func newTestPlane(t *testing.T, mod func(*Config)) (*Plane, *metrics.Registry) {
	t.Helper()
	met := metrics.NewRegistry()
	cfg := Config{Workers: 4, Metrics: met}
	if mod != nil {
		mod(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p, met
}

// collector queues deliveries like a subscriber would, accepting until
// closed and releasing every frame it drained.
type collector struct {
	mu    sync.Mutex
	dead  bool
	queue chan Delivery
}

func newCollector(depth int) *collector {
	return &collector{queue: make(chan Delivery, depth)}
}

func (c *collector) deliver(d Delivery) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return false
	}
	select {
	case c.queue <- d:
		return true
	default:
		return false
	}
}

// stop refuses future deliveries and drains (releasing) everything queued,
// returning the drained deliveries' frames' wire bytes and sequences.
func (c *collector) stop() (frames [][]byte, seqs []uint64) {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	for {
		select {
		case d := <-c.queue:
			frames = append(frames, append([]byte(nil), d.Frame.Bytes()...))
			seqs = append(seqs, d.Frame.Seq())
			d.Frame.Release()
		default:
			return frames, seqs
		}
	}
}

// TestByteIdentityAllMethods proves the shared plane emits the exact bytes a
// per-subscriber encode loop would: for every method, frames fanned out by
// Publish and frames served by EncodeCached both equal a direct
// codec.AppendFrameSeq of the same (block, method, seq) — including the
// expansion-fallback path on incompressible data.
func TestByteIdentityAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	blocks := [][]byte{
		bytes.Repeat([]byte("abcabcabc"), 500), // compressible
		[]byte("short"),                        // tiny
		make([]byte, 4096),                     // zeros
		func() []byte { b := make([]byte, 4096); rng.Read(b); return b }(), // incompressible: fallback
	}
	for _, m := range allMethods {
		reg := codec.NewRegistry()
		p, _ := newTestPlane(t, func(c *Config) { c.Engine = core.Config{Registry: reg} })
		ch := p.Channel("md")
		col := newCollector(len(blocks) + 1)
		mb := ch.Join(m, col.deliver)

		for i, b := range blocks {
			ch.Publish(b, uint64(i+1))
		}
		if err := p.Close(); err != nil { // flush the pipeline
			t.Fatal(err)
		}
		frames, seqs := col.stop()
		mb.Leave()
		if len(frames) != len(blocks) {
			t.Fatalf("%v: got %d frames, want %d", m, len(frames), len(blocks))
		}
		for i, b := range blocks {
			want, _, err := codec.AppendFrameSeq(nil, reg, m, b, uint64(i+1))
			if err != nil {
				t.Fatalf("%v: direct encode: %v", m, err)
			}
			if seqs[i] != uint64(i+1) {
				t.Fatalf("%v: frame %d carries seq %d", m, i, seqs[i])
			}
			if !bytes.Equal(frames[i], want) {
				t.Fatalf("%v: block %d: plane frame differs from direct encode (%d vs %d bytes)",
					m, i, len(frames[i]), len(want))
			}
		}
	}
}

// TestEncodeCachedIdentityAndDedup checks the replay path: EncodeCached
// returns bytes identical to a direct encode, and a second request for the
// same (seq, method) is a cache hit, not a second encode.
func TestEncodeCachedIdentityAndDedup(t *testing.T) {
	reg := codec.NewRegistry()
	p, met := newTestPlane(t, func(c *Config) { c.Engine = core.Config{Registry: reg} })
	ch := p.Channel("md")
	data := bytes.Repeat([]byte("replay me "), 300)

	for _, m := range allMethods {
		f1, err := ch.EncodeCached(data, 42, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := ch.EncodeCached(data, 42, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := codec.AppendFrameSeq(nil, reg, m, data, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f1.Bytes(), want) || !bytes.Equal(f2.Bytes(), want) {
			t.Fatalf("%v: cached frame differs from direct encode", m)
		}
		f1.Release()
		f2.Release()
	}
	if got := met.Counter("encplane.encodes").Value(); got != int64(len(allMethods)) {
		t.Fatalf("encodes = %d, want %d (one per method)", got, len(allMethods))
	}
	if got := met.Counter("encplane.cache_hits").Value(); got != int64(len(allMethods)) {
		t.Fatalf("cache_hits = %d, want %d", got, len(allMethods))
	}
}

// TestRawFastPathByteIdentity proves the receiver-raw bypass is
// indistinguishable on the wire: when every member sits in the (None,
// receiver) class, publishes skip the encode pipeline entirely
// (encplane.raw_fastpath counts them) yet deliver frames byte-identical to
// a direct encode, in publish order, with the frame parked in the cache
// for resume replays — and per-channel LiveBytes still sums to the
// plane-wide total.
func TestRawFastPathByteIdentity(t *testing.T) {
	reg := codec.NewRegistry()
	p, met := newTestPlane(t, func(c *Config) { c.Engine = core.Config{Registry: reg} })
	ch := p.Channel("md")
	const n = 20
	colA := newCollector(n + 1)
	colB := newCollector(n + 1)
	ma := ch.JoinPlaced(codec.None, selector.PlacementReceiver, colA.deliver)
	mb := ch.JoinPlaced(codec.None, selector.PlacementReceiver, colB.deliver)

	data := bytes.Repeat([]byte("raw fan-out "), 200)
	for seq := uint64(1); seq <= n; seq++ {
		ch.Publish(data, seq)
	}
	if got := met.Counter("encplane.raw_fastpath").Value(); got != n {
		t.Fatalf("raw_fastpath = %d, want %d (every publish should bypass the pipeline)", got, n)
	}
	if got := ch.LiveBytes(); got != p.LiveBytes() {
		t.Fatalf("channel LiveBytes %d != plane LiveBytes %d with one live channel", got, p.LiveBytes())
	}

	// A resume replay of a fast-path block must hit the cache, not encode.
	hits := met.Counter("encplane.cache_hits").Value()
	f, err := ch.EncodeCached(data, 1, codec.None, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	if got := met.Counter("encplane.cache_hits").Value(); got != hits+1 {
		t.Fatal("fast-path frame not served from the cache on replay")
	}

	for _, col := range []*collector{colA, colB} {
		frames, seqs := col.stop()
		if len(frames) != n {
			t.Fatalf("delivered %d frames, want %d", len(frames), n)
		}
		want, _, err := codec.AppendFrameSeq(nil, reg, codec.None, data, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, fb := range frames {
			if seqs[i] != uint64(i+1) {
				t.Fatalf("seqs[%d] = %d: fast path broke publish order", i, seqs[i])
			}
			want, _, _ = codec.AppendFrameSeq(want[:0], reg, codec.None, data, seqs[i])
			if !bytes.Equal(fb, want) {
				t.Fatalf("block %d: fast-path frame differs from direct encode", i)
			}
		}
	}
	ma.Leave()
	mb.Leave()
}

// TestRawFastPathRequiresUniformReceiverClass pins the gate: one member
// outside (None, receiver) — wrong method or wrong placement — forces every
// publish back through the pipeline, and per-member sequence streams stay
// monotonic when membership flips the channel between the two modes.
func TestRawFastPathRequiresUniformReceiverClass(t *testing.T) {
	p, met := newTestPlane(t, nil)
	ch := p.Channel("md")
	const n = 60
	col := newCollector(2*n + 1)
	mb := ch.JoinPlaced(codec.None, selector.PlacementReceiver, col.deliver)
	other := ch.JoinPlaced(codec.Huffman, selector.PlacementReceiver, func(Delivery) bool { return false })

	data := bytes.Repeat([]byte("mode flip "), 100)
	seq := uint64(0)
	for i := 0; i < n; i++ {
		seq++
		ch.Publish(data, seq)
	}
	if got := met.Counter("encplane.raw_fastpath").Value(); got != 0 {
		t.Fatalf("raw_fastpath = %d with a Huffman member attached, want 0", got)
	}

	// Drop the non-raw member: publishes may now switch to the fast path,
	// but only after the pipeline's in-flight jobs drain — order holds.
	other.Leave()
	for i := 0; i < n; i++ {
		seq++
		ch.Publish(data, seq)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_, seqs := col.stop()
	mb.Leave()
	if len(seqs) != 2*n {
		t.Fatalf("delivered %d blocks, want %d", len(seqs), 2*n)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs[%d] = %d: ordering broke across the pipeline/fast-path transition", i, s)
		}
	}
}

// TestClassesGaugeTracksDistinctMethods checks chan.<name>.classes follows
// joins, migrations, and leaves.
func TestClassesGaugeTracksDistinctMethods(t *testing.T) {
	p, met := newTestPlane(t, nil)
	ch := p.Channel("md")
	g := met.Gauge("chan.md.classes")

	a := ch.Join(codec.None, func(Delivery) bool { return false })
	b := ch.Join(codec.None, func(Delivery) bool { return false })
	if g.Value() != 1 {
		t.Fatalf("classes = %d after two None joins, want 1", g.Value())
	}
	b.Migrate(codec.LempelZiv)
	if g.Value() != 2 {
		t.Fatalf("classes = %d after migration, want 2", g.Value())
	}
	b.Leave()
	if g.Value() != 1 {
		t.Fatalf("classes = %d after leave, want 1", g.Value())
	}
	a.Leave()
	if g.Value() != 0 {
		t.Fatalf("classes = %d after all left, want 0", g.Value())
	}
}

// TestMemberSeqMonotonicThroughMigrations migrates a member on every block
// and checks its delivered sequence stream is exactly 1..n — no block
// duplicated or dropped across a class move, because each publish snapshots
// membership once and the pipeline sequencer emits in submission order.
func TestMemberSeqMonotonicThroughMigrations(t *testing.T) {
	p, met := newTestPlane(t, nil)
	ch := p.Channel("md")
	const n = 100
	col := newCollector(n + 1)
	mb := ch.Join(codec.None, col.deliver)
	data := bytes.Repeat([]byte("sequenced payload "), 64)
	for seq := uint64(1); seq <= n; seq++ {
		ch.Publish(data, seq)
		mb.Migrate(allMethods[int(seq)%len(allMethods)])
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_, seqs := col.stop()
	mb.Leave()
	if len(seqs) != n {
		t.Fatalf("delivered %d blocks, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs[%d] = %d: gap or duplicate across a migration", i, s)
		}
	}
	if met.Counter("encplane.migrations").Value() == 0 {
		t.Fatal("no migrations recorded; test exercised nothing")
	}
}

// TestFrameRefcountGuards confirms misuse panics instead of corrupting.
func TestFrameRefcountGuards(t *testing.T) {
	p, _ := newTestPlane(t, nil)
	ch := p.Channel("md")
	f, err := ch.EncodeCached([]byte("x"), 1, codec.None, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Release() // caller ref gone; cache still holds one

	// Pull the cached frame out and release past zero.
	f2, err := ch.EncodeCached([]byte("x"), 1, codec.None, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", what)
			}
		}()
		fn()
	}
	_ = f2
	// A frame fully released must reject Retain. Build standalone frames on
	// their own channels and purge the caches so the counts actually reach
	// zero. (Retain's panic fires after its increment, so each guard needs
	// its own pristine zero-count frame.)
	deadFrame := func(name string) *Frame {
		ch := p.Channel(name)
		g, err := ch.EncodeCached([]byte("y"), 1, codec.None, nil)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
		ch.close()
		return g
	}
	mustPanic("Retain after release", func() { deadFrame("other1").Retain() })
	mustPanic("Release past zero", func() { deadFrame("other2").Release() })
}

// TestRefcountChurnStorm is the leak hunt: members join, migrate, and leave
// under a publish storm, with queues refusing, accepting, and draining
// concurrently. After everything quiesces and the plane closes, every frame
// reference must be gone — zero leaks, and any use-after-release would have
// panicked via the refcount guards. Run with -race.
func TestRefcountChurnStorm(t *testing.T) {
	p, met := newTestPlane(t, func(c *Config) { c.CacheBytes = 64 << 10 }) // small: force evictions
	ch := p.Channel("md")

	const (
		churners  = 8
		publishes = 400
	)
	// Stable members guarantee every publish fans out even when the churners
	// are all between join and leave; deep queues accept the whole storm.
	var (
		stableCols []*collector
		stableMbs  []*Member
	)
	for i := 0; i < 3; i++ {
		col := newCollector(publishes + 1)
		stableCols = append(stableCols, col)
		stableMbs = append(stableMbs, ch.Join(allMethods[i], col.deliver))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				col := newCollector(4)
				mb := ch.Join(allMethods[rng.Intn(len(allMethods))], col.deliver)
				spins := rng.Intn(4) + 1
				for j := 0; j < spins; j++ {
					mb.Migrate(allMethods[rng.Intn(len(allMethods))])
					time.Sleep(time.Duration(rng.Intn(150)) * time.Microsecond)
					// Partial drain keeps queues churning between refusal
					// (full) and acceptance.
					select {
					case d := <-col.queue:
						d.Frame.Release()
					default:
					}
				}
				mb.Leave()
				col.stop() // refuse future deliveries, release the backlog
			}
		}(i)
	}

	data := bytes.Repeat([]byte("churn payload "), 200)
	for seq := uint64(1); seq <= publishes; seq++ {
		ch.Publish(data, seq)
		if seq%16 == 0 {
			time.Sleep(100 * time.Microsecond) // let the churn interleave
		}
	}
	if err := p.Close(); err != nil { // flush in-flight fan-outs
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	for _, mb := range stableMbs {
		mb.Leave()
	}
	for _, col := range stableCols {
		col.stop()
	}

	if n := p.LiveFrames(); n != 0 {
		t.Fatalf("%d frames still hold references after churn quiesced", n)
	}
	if met.Counter("encplane.encodes").Value() == 0 {
		t.Fatal("storm encoded nothing; test exercised no fan-out")
	}
	if g := met.Gauge("chan.md.queued_bytes").Value(); g != 0 {
		t.Fatalf("chan.md.queued_bytes = %d after quiesce, want 0", g)
	}
}
