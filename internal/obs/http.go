package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"ccx/internal/metrics"
)

// SpanDumper is the slice of internal/tracing the debug plane needs: a
// JSONL dump of recent distributed-trace spans. Declared here (rather than
// importing tracing) so obs stays a leaf that any package may depend on.
// tracing.Ring implements it; its methods are nil-receiver-safe, so a
// disabled tracer's nil ring can be passed straight through.
type SpanDumper interface {
	WriteJSONL(w io.Writer, max int) error
}

// MaxDumpRecords is the hard ceiling on records one /debug/decisions or
// /debug/spans response may carry. Ring sizes are operator-configurable
// (and "no n parameter" used to mean "the whole ring"), so without a cap a
// casual curl against a loaded broker with a large ring dumps unbounded
// JSONL from inside the serving process. Requests asking for more — or for
// a non-positive/absent n — get exactly this many of the newest records.
const MaxDumpRecords = 4096

// clampDump applies MaxDumpRecords to a raw ?n= value (0 or negative used
// to mean "everything"; now it means "the maximum").
func clampDump(n int) int {
	if n <= 0 || n > MaxDumpRecords {
		return MaxDumpRecords
	}
	return n
}

func atoiQuery(r *http.Request, key string) int {
	n, _ := strconv.Atoi(r.URL.Query().Get(key))
	return n
}

// Handler returns the debug plane as an http.Handler:
//
//	GET /metrics           Prometheus text exposition of reg
//	GET /debug/vars        flat JSON snapshot of reg (ccstat's feed)
//	GET /debug/decisions   recent decision-trace records as a JSON array
//	                       (?n=N caps the count, ?format=jsonl streams
//	                       one object per line)
//	GET /debug/spans       recent distributed-trace spans as JSONL
//	                       (?n=N caps the count) — cmd/cctrace's feed
//	GET /debug/pprof/...   the standard runtime profiles
//	GET /                  a plain-text index of the above
//
// reg, log, and spans may each be nil; the corresponding endpoints then
// serve empty documents, so one mux shape fits every daemon.
func Handler(reg *metrics.Registry, log *DecisionLog, spans SpanDumper) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		n := clampDump(atoiQuery(r, "n"))
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = log.WriteJSONL(w, n)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		recs := log.Recent(n)
		if recs == nil {
			recs = []Record{}
		}
		_ = json.NewEncoder(w).Encode(recs)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if spans == nil {
			return
		}
		_ = spans.WriteJSONL(w, clampDump(atoiQuery(r, "n")))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "ccx debug plane\n\n"+
			"  /metrics          Prometheus text exposition\n"+
			"  /debug/vars       JSON metrics snapshot\n"+
			"  /debug/decisions  recent per-block selector decisions (?n=N, ?format=jsonl)\n"+
			"  /debug/spans      recent distributed-trace spans as JSONL (?n=N)\n"+
			"  /debug/pprof/     runtime profiles\n")
	})
	return mux
}

// Server is a running debug HTTP listener.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	stopRun func()
}

// Serve starts the debug plane on addr (e.g. ":6060" or "127.0.0.1:0")
// and serves it in the background until Close. The bound address is
// available via Addr, so ":0" works in tests.
func Serve(addr string, reg *metrics.Registry, log *DecisionLog, spans SpanDumper) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{
		Handler:           Handler(reg, log, spans),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	s := &Server{ln: ln, srv: srv}
	if reg != nil {
		// Anything serving the debug plane also reports its own runtime
		// health (go.goroutines, go.heap_alloc_bytes, go.gc_pause_seconds…)
		// without each daemon wiring a sampler.
		s.stopRun = metrics.StartRuntimeSampler(reg, 0)
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener, any in-flight handlers, and the runtime
// metrics sampler.
func (s *Server) Close() error {
	if s.stopRun != nil {
		s.stopRun()
	}
	return s.srv.Close()
}
