package obs

import (
	"io"
	"time"

	"ccx/internal/metrics"
)

// DumpEvery writes reg's JSON snapshot to w at the given interval — the
// -metrics-interval loop shared by the ccx daemons. It returns a stop
// function (safe to call more than once) that halts the ticker; a nil
// registry or non-positive interval yields a no-op stop.
func DumpEvery(reg *metrics.Registry, interval time.Duration, w io.Writer) (stop func()) {
	if reg == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				reg.WriteJSON(w)
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
		}
	}
}
