// Package obs is the observability plane for ccx processes: a per-block
// decision trace that records *why* the selector chose each compression
// method, and a debug HTTP server that exposes the trace, the metrics
// registry (Prometheus text exposition and JSON), and net/http/pprof.
//
// The paper's contribution is a feedback loop — measured goodput and
// reducing speed in, a method choice out, once per 128 KB block — and this
// package makes the loop auditable end to end: every Record carries the
// inputs the selector saw (goodput, probe ratio, reducing speed, sampled
// entropy), the prediction it made, the method it chose, and the realized
// outcome (wire bytes, ratio, encode and send latency). internal/core and
// internal/broker emit records into a DecisionLog ring buffer; operators
// read them back as JSON over GET /debug/decisions or as JSONL dumps.
//
// Everything is opt-in and cheap: a nil *DecisionLog means no tracing at
// all (callers guard with a nil check), and Add is an atomic slot claim
// plus an atomic pointer store — no locks on the block hot path.
package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// Record is one per-block decision-trace entry. Field groups follow the
// loop's phases: identity, selector inputs, prediction, choice, outcome.
type Record struct {
	// Seq is the log-wide sequence number (assigned by DecisionLog.Add).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock stamp of the record.
	Time time.Time `json:"time"`
	// Stream names the adaptation loop that produced the record, e.g.
	// "send" for a point-to-point sender or "sub.3" for a broker
	// subscriber. Empty for single-loop processes.
	Stream string `json:"stream,omitempty"`
	// Block is the block's ordinal within its stream.
	Block int `json:"block"`
	// BlockLen is the original block size in bytes.
	BlockLen int `json:"block_len"`

	// Selector inputs (§2.5): end-to-end goodput in bytes/sec, the probe's
	// compressed fraction, its reducing speed in bytes/sec, and the sampled
	// data characteristics.
	GoodputBps   float64 `json:"goodput_bps"`
	ProbeRatio   float64 `json:"probe_ratio"`
	ReduceSpeed  float64 `json:"reduce_speed_bps"`
	Entropy      float64 `json:"entropy_bits"`
	Repetition   float64 `json:"repetition"`
	PredSendNs   int64   `json:"pred_send_ns"`
	PredReduceNs int64   `json:"pred_reduce_ns"`

	// Choice and reasoning. Placement says where the block's compression
	// ran ("publisher", "broker", "receiver") — empty on records from loops
	// that predate the placement dimension (receive side, encode plane).
	Method    string `json:"method"`
	Placement string `json:"placement,omitempty"`
	Reason    string `json:"reason,omitempty"`

	// Realized outcome. WireBytes is the full frame size; Ratio is
	// compressed/original payload; EncodeNs and SendNs are the measured
	// latencies. Fallback marks blocks that expanded and were sent raw.
	WireBytes int     `json:"wire_bytes,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"`
	EncodeNs  int64   `json:"encode_ns,omitempty"`
	DecodeNs  int64   `json:"decode_ns,omitempty"`
	SendNs    int64   `json:"send_ns,omitempty"`
	Fallback  bool    `json:"fallback,omitempty"`

	// Receiver-side records: Corrupt marks a frame that failed integrity
	// checks and was skipped via resync; Err carries its error text.
	Corrupt bool   `json:"corrupt,omitempty"`
	Err     string `json:"err,omitempty"`

	// Session/resume records. FrameSeq is the per-channel block sequence
	// number stamped into sequenced (v3) frames. Resume marks a resume
	// handshake (broker side: replay decision; receiver side: reconnect
	// outcome). Dup marks a replayed duplicate the delivery tracker
	// suppressed. GapBlocks counts blocks known lost at this point — evicted
	// past the replay window or skipped on the wire — always reported,
	// never silently swallowed.
	FrameSeq  uint64 `json:"frame_seq,omitempty"`
	Resume    bool   `json:"resume,omitempty"`
	Dup       bool   `json:"dup,omitempty"`
	GapBlocks uint64 `json:"gap_blocks,omitempty"`

	// Shared-encode-plane records. Class labels the method-equivalence
	// class ("<channel>/<method>") a frame was encoded for, ClassSubs how
	// many subscribers shared that single encode, and CacheHit marks frames
	// served from the refcounted frame cache instead of a fresh encode
	// (resume replays and reconnect storms).
	Class     string `json:"class,omitempty"`
	ClassSubs int    `json:"class_subs,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`

	// Parallel-pipeline records. Workers is the encode worker-pool size that
	// produced the block (1 = the sequential loop); PipeWaitNs is how long
	// the in-order sequencer stalled waiting for this block's encode —
	// persistently high values mean the pool is too small (or one codec is
	// much slower than its neighbours).
	Workers    int   `json:"workers,omitempty"`
	PipeWaitNs int64 `json:"pipe_wait_ns,omitempty"`

	// Trace joins this decision record with the distributed-trace span ring
	// (/debug/spans): the trace id stamped into the block's frame
	// annotation when the block was head-sampled, 0 otherwise.
	Trace uint64 `json:"trace,omitempty"`
}

// DefaultLogSize is the decision ring's default capacity.
const DefaultLogSize = 1024

// DecisionLog is a fixed-capacity ring buffer of Records. Writers claim a
// slot with one atomic add and publish the record with one atomic pointer
// store; readers snapshot whatever is published. Under heavy concurrency a
// reader may observe a ring missing the very newest records — acceptable
// for a debugging trace, and the price of a lock-free hot path.
//
// A nil *DecisionLog is inert: Add, Recent, and WriteJSONL are no-ops, so
// instrumented code holds an optional log without nil checks.
type DecisionLog struct {
	slots []atomic.Pointer[Record]
	next  atomic.Uint64 // next sequence number to assign
	mask  uint64
}

// NewDecisionLog returns a log holding the most recent size records
// (rounded up to a power of two; size <= 0 means DefaultLogSize).
func NewDecisionLog(size int) *DecisionLog {
	if size <= 0 {
		size = DefaultLogSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &DecisionLog{
		slots: make([]atomic.Pointer[Record], n),
		mask:  uint64(n - 1),
	}
}

// Cap returns the ring capacity.
func (l *DecisionLog) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Len returns how many records are currently retained (<= Cap).
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	n := l.next.Load()
	if n > uint64(len(l.slots)) {
		return len(l.slots)
	}
	return int(n)
}

// Seq returns the number of records ever added.
func (l *DecisionLog) Seq() uint64 {
	if l == nil {
		return 0
	}
	return l.next.Load()
}

// Add appends r, stamping its Seq (and its Time, if unset). The record is
// copied; callers may reuse theirs.
func (l *DecisionLog) Add(r Record) {
	if l == nil {
		return
	}
	seq := l.next.Add(1) - 1
	r.Seq = seq
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	l.slots[seq&l.mask].Store(&r)
}

// Recent returns up to max of the newest records in chronological order
// (oldest first). max <= 0 means the whole ring.
func (l *DecisionLog) Recent(max int) []Record {
	if l == nil {
		return nil
	}
	if max <= 0 || max > len(l.slots) {
		max = len(l.slots)
	}
	end := l.next.Load()
	start := uint64(0)
	if end > uint64(max) {
		start = end - uint64(max)
	}
	out := make([]Record, 0, end-start)
	for seq := start; seq < end; seq++ {
		rec := l.slots[seq&l.mask].Load()
		// A slot can hold an older or newer record than seq when writers
		// race the ring boundary; keep only exact matches so callers see a
		// strictly ordered trace.
		if rec != nil && rec.Seq == seq {
			out = append(out, *rec)
		}
	}
	return out
}

// WriteJSONL dumps up to max recent records as one JSON object per line,
// oldest first. max <= 0 means the whole ring.
func (l *DecisionLog) WriteJSONL(w io.Writer, max int) error {
	enc := json.NewEncoder(w)
	for _, rec := range l.Recent(max) {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
