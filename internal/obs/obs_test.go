package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ccx/internal/metrics"
)

func TestDecisionLogRing(t *testing.T) {
	l := NewDecisionLog(4)
	if l.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", l.Cap())
	}
	for i := 0; i < 10; i++ {
		l.Add(Record{Block: i, Method: "none"})
	}
	recs := l.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("recent = %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Block != 6+i {
			t.Errorf("recent[%d].Block = %d, want %d", i, r.Block, 6+i)
		}
		if r.Seq != uint64(6+i) {
			t.Errorf("recent[%d].Seq = %d, want %d", i, r.Seq, 6+i)
		}
		if r.Time.IsZero() {
			t.Errorf("recent[%d] missing timestamp", i)
		}
	}
	if got := l.Recent(2); len(got) != 2 || got[1].Block != 9 {
		t.Fatalf("Recent(2) = %+v, want the 2 newest", got)
	}
	if l.Len() != 4 || l.Seq() != 10 {
		t.Fatalf("len=%d seq=%d, want 4 and 10", l.Len(), l.Seq())
	}
}

func TestDecisionLogRoundsCapacity(t *testing.T) {
	if got := NewDecisionLog(5).Cap(); got != 8 {
		t.Fatalf("cap = %d, want next power of two 8", got)
	}
	if got := NewDecisionLog(0).Cap(); got != DefaultLogSize {
		t.Fatalf("cap = %d, want default %d", got, DefaultLogSize)
	}
}

func TestNilDecisionLogIsInert(t *testing.T) {
	var l *DecisionLog
	l.Add(Record{}) // must not panic
	if l.Recent(10) != nil || l.Len() != 0 || l.Cap() != 0 || l.Seq() != 0 {
		t.Fatal("nil log must be empty")
	}
	if err := l.WriteJSONL(io.Discard, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionLogConcurrent(t *testing.T) {
	l := NewDecisionLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Add(Record{Block: i})
				_ = l.Recent(16)
			}
		}()
	}
	wg.Wait()
	if l.Seq() != 4000 {
		t.Fatalf("seq = %d, want 4000", l.Seq())
	}
	recs := l.Recent(0)
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("records out of order: %d after %d", recs[i].Seq, recs[i-1].Seq)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	l := NewDecisionLog(8)
	l.Add(Record{Stream: "send", Block: 0, Method: "none", GoodputBps: 1e6})
	l.Add(Record{Stream: "send", Block: 1, Method: "lempel-ziv", Ratio: 0.4})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d invalid JSON: %v", lines, err)
		}
		if rec.Block != lines {
			t.Fatalf("line %d block = %d", lines, rec.Block)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestDebugServer(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("broker.events_in").Add(7)
	reg.Histogram("ccx.encode_seconds", metrics.LatencyBuckets).Observe(0.002)
	log := NewDecisionLog(16)
	log.Add(Record{Stream: "sub.1", Block: 0, Method: "huffman", GoodputBps: 5e5})

	srv, err := Serve("127.0.0.1:0", reg, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, ct := get("/metrics"); !strings.Contains(body, "broker_events_in 7") ||
		!strings.Contains(body, "ccx_encode_seconds_bucket") ||
		!strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics = %q (content-type %q)", body, ct)
	}
	body, _ := get("/debug/vars")
	var vars map[string]float64
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars["broker.events_in"] != 7 || vars["ccx.encode_seconds.count"] != 1 {
		t.Errorf("/debug/vars = %v", vars)
	}
	body, _ = get("/debug/decisions")
	var recs []Record
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/debug/decisions not JSON: %v", err)
	}
	if len(recs) != 1 || recs[0].Method != "huffman" || recs[0].GoodputBps != 5e5 {
		t.Errorf("/debug/decisions = %+v", recs)
	}
	if body, _ = get("/debug/decisions?format=jsonl&n=1"); !strings.Contains(body, `"huffman"`) {
		t.Errorf("jsonl decisions = %q", body)
	}
	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
	if body, _ = get("/"); !strings.Contains(body, "/debug/decisions") {
		t.Errorf("index = %q", body)
	}
}

func TestDebugServerNilPieces(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/decisions"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with nil registry/log: status %d", path, resp.StatusCode)
		}
	}
}

type maxRecorder struct{ got int }

func (m *maxRecorder) WriteJSONL(w io.Writer, max int) error {
	m.got = max
	return nil
}

// TestDebugDumpCap pins the hard response ceiling: no ?n= value — absent,
// zero, negative, or enormous — may make /debug/decisions or /debug/spans
// emit more than MaxDumpRecords records, however large the backing rings.
func TestDebugDumpCap(t *testing.T) {
	for n, want := range map[int]int{0: MaxDumpRecords, -3: MaxDumpRecords,
		MaxDumpRecords + 1: MaxDumpRecords, 1 << 30: MaxDumpRecords,
		7: 7, MaxDumpRecords: MaxDumpRecords} {
		if got := clampDump(n); got != want {
			t.Errorf("clampDump(%d) = %d, want %d", n, got, want)
		}
	}

	log := NewDecisionLog(2 * MaxDumpRecords)
	total := MaxDumpRecords + 100
	for i := 0; i < total; i++ {
		log.Add(Record{Stream: "cap", Block: i})
	}
	spans := &maxRecorder{}
	h := Handler(nil, log, spans)

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, w.Code)
		}
		return w
	}

	var recs []Record
	if err := json.Unmarshal(get("/debug/decisions").Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != MaxDumpRecords {
		t.Fatalf("uncapped /debug/decisions returned %d records, want %d", len(recs), MaxDumpRecords)
	}
	if recs[len(recs)-1].Block != total-1 {
		t.Fatalf("cap dropped the newest record: last block = %d", recs[len(recs)-1].Block)
	}
	sc := bufio.NewScanner(get("/debug/decisions?format=jsonl&n=-1").Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines int
	for sc.Scan() {
		lines++
	}
	if lines != MaxDumpRecords {
		t.Fatalf("jsonl dump wrote %d lines, want %d", lines, MaxDumpRecords)
	}
	for path, want := range map[string]int{
		"/debug/spans":          MaxDumpRecords,
		"/debug/spans?n=999999": MaxDumpRecords,
		"/debug/spans?n=12":     12,
	} {
		get(path)
		if spans.got != want {
			t.Errorf("GET %s passed max=%d to the span dumper, want %d", path, spans.got, want)
		}
	}
}

// TestDecisionLogDumpRacesAdd hammers WriteJSONL while writers wrap the
// ring several times over. Run under -race this pins the lock-free
// contract: dumps may miss the newest records but every line they do emit
// is a whole, ordered record — no torn reads, no panics.
func TestDecisionLogDumpRacesAdd(t *testing.T) {
	log := NewDecisionLog(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					log.Add(Record{Stream: "race", Block: i, Method: "none"})
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := log.WriteJSONL(&buf, 0); err != nil {
			t.Fatalf("dump %d: %v", i, err)
		}
		var lastSeq uint64
		var n int
		dec := json.NewDecoder(&buf)
		for dec.More() {
			var r Record
			if err := dec.Decode(&r); err != nil {
				t.Fatalf("dump %d: torn record: %v", i, err)
			}
			if n > 0 && r.Seq <= lastSeq {
				t.Fatalf("dump %d: sequence went backwards (%d after %d)", i, r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			n++
		}
	}
	close(stop)
	wg.Wait()
}
