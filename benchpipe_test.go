package ccx_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/metrics"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

// The pipeline benchmarks measure the encode path in isolation — fixed
// method, discarded output — so the numbers track compression throughput
// and pipeline overhead, not adaptive-policy choices or network speed.
const (
	pipeBlockSize = 64 << 10
	pipeCorpusLen = 64 * pipeBlockSize // 4 MiB per iteration
)

// lzPolicy pins every block to Lempel-Ziv, the workhorse method, making
// run-to-run and machine-to-machine comparisons meaningful.
type lzPolicy struct{}

func (lzPolicy) Name() string { return "bench-lz" }
func (lzPolicy) Select(in selector.Inputs) selector.Decision {
	return selector.Decision{Method: codec.LempelZiv, Inputs: in}
}

// pipeCorpus mixes the paper's two compressible workloads (OIS
// transactions, XML) so LZ has realistic match structure to chew on.
func pipeCorpus() []byte {
	data := make([]byte, 0, pipeCorpusLen)
	data = append(data, datagen.OISTransactions(pipeCorpusLen/2, 0.9, 21)...)
	data = append(data, datagen.XMLDocuments(pipeCorpusLen-len(data), 22)...)
	return data
}

func pipeEngine(tb testing.TB, workers int) *core.Engine {
	cfg := selector.DefaultConfig()
	cfg.BlockSize = pipeBlockSize
	e, err := core.NewEngine(core.Config{Selector: cfg, Policy: lzPolicy{}, Workers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

func benchmarkPipeline(b *testing.B, workers int) {
	data := pipeCorpus()
	e := pipeEngine(b, workers)
	blocks := (len(data) + pipeBlockSize - 1) / pipeBlockSize
	discard := func([]byte) (time.Duration, error) { return 0, nil }
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewSession(e)
		if _, err := s.Stream(data, discard, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blocks), "ns/block")
}

func BenchmarkPipeline1Workers(b *testing.B) { benchmarkPipeline(b, 1) }
func BenchmarkPipeline4Workers(b *testing.B) { benchmarkPipeline(b, 4) }
func BenchmarkPipelineNWorkers(b *testing.B) { benchmarkPipeline(b, runtime.GOMAXPROCS(0)) }

// ---- benchmark-regression artifact ----

// BenchArtifact is the machine-readable result of one pipeline benchmark
// run, written by `make bench` as BENCH_<sha>.json and compared in CI
// against bench/baseline.json.
type BenchArtifact struct {
	SHA        string `json:"sha"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// RefMBs is the throughput of a plain memcpy over the same corpus on
	// the same machine in the same run. Normalizing against it makes the
	// regression gate portable: a slower CI runner lowers both numbers,
	// leaving the ratio stable, so the 15% gate trips on code regressions
	// rather than hardware lottery.
	RefMBs  float64      `json:"ref_memcpy_mb_s"`
	Results []BenchEntry `json:"results"`
}

// BenchEntry is one worker-count's measurement.
type BenchEntry struct {
	Name           string  `json:"name"`
	Workers        int     `json:"workers"`
	NsPerBlock     float64 `json:"ns_per_block"`
	MBs            float64 `json:"mb_s"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	NormThroughput float64 `json:"norm_throughput"` // MBs / RefMBs
}

// regressionGate is the fraction of normalized throughput a run may lose
// against the committed baseline before CI fails.
const regressionGate = 0.15

// TestBenchArtifact drives the pipeline benchmarks programmatically and
// writes the BENCH_<sha>.json artifact when CCX_BENCH_OUT names a path.
// When CCX_BENCH_BASELINE also names a committed baseline, the run fails
// if any worker-count's memcpy-normalized throughput regressed more than
// 15%. Without CCX_BENCH_OUT the test is a no-op, so `go test ./...`
// stays fast.
func TestBenchArtifact(t *testing.T) {
	out := os.Getenv("CCX_BENCH_OUT")
	if out == "" {
		t.Skip("set CCX_BENCH_OUT=<path> to run the benchmark suite and write the artifact")
	}

	data := pipeCorpus()
	blocks := (len(data) + pipeBlockSize - 1) / pipeBlockSize

	// memcpy reference: the fastest conceivable "codec" on this machine.
	ref := testing.Benchmark(func(b *testing.B) {
		dst := make([]byte, len(data))
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			copy(dst, data)
		}
	})
	refMBs := mbPerSec(ref, len(data))

	art := BenchArtifact{
		SHA:        benchSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		RefMBs:     refMBs,
	}
	for _, workers := range benchWorkerCounts() {
		workers := workers
		res := testing.Benchmark(func(b *testing.B) { benchmarkPipeline(b, workers) })
		mbs := mbPerSec(res, len(data))
		art.Results = append(art.Results, BenchEntry{
			Name:           fmt.Sprintf("BenchmarkPipeline/%dworkers", workers),
			Workers:        workers,
			NsPerBlock:     float64(res.NsPerOp()) / float64(blocks),
			MBs:            mbs,
			AllocsPerOp:    res.AllocsPerOp(),
			NormThroughput: mbs / refMBs,
		})
		t.Logf("workers=%d: %.1f MB/s (%.3f of memcpy), %d allocs/op", workers, mbs, mbs/refMBs, res.AllocsPerOp())
	}

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)

	basePath := os.Getenv("CCX_BENCH_BASELINE")
	if basePath == "" {
		return
	}
	raw, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var base BenchArtifact
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	for _, cur := range art.Results {
		for _, old := range base.Results {
			if old.Workers != cur.Workers {
				continue
			}
			if old.NormThroughput <= 0 {
				continue
			}
			drop := 1 - cur.NormThroughput/old.NormThroughput
			if drop > regressionGate {
				t.Errorf("%s regressed %.1f%% vs baseline %s (%.3f -> %.3f of memcpy), gate is %.0f%%",
					cur.Name, drop*100, base.SHA, old.NormThroughput, cur.NormThroughput, regressionGate*100)
			} else {
				t.Logf("%s: %.1f%% vs baseline (gate %.0f%%)", cur.Name, -drop*100, regressionGate*100)
			}
		}
	}
}

// ---- tracing-overhead gate ----

// tracingGate is the per-block overhead the trace plane may add at the
// default 1% sampling rate before CI fails. The design budget is +1%
// (ISSUE 8, next to the +2.6% fully-on metrics figure); the gate sits at
// 3% so single-digit microbenchmark jitter on shared CI runners cannot
// fail an honest build, while a per-block regression (an allocation, a
// lock) still trips it immediately.
const tracingGate = 0.03

// benchmarkTransmitTraced measures the sequential per-block transmit cost
// with metrics on and the span plane at the given sampling rate (rate < 0
// leaves the tracer off — the PR 3 "telemetry=on" baseline).
func benchmarkTransmitTraced(b *testing.B, rate float64) {
	cfg := selector.DefaultConfig()
	cfg.BlockSize = pipeBlockSize
	tel := core.Telemetry{Metrics: metrics.NewRegistry(), Stream: "bench"}
	if rate >= 0 {
		tel.Tracer = tracing.New("bench", rate, 4096)
	}
	e, err := core.NewEngine(core.Config{Selector: cfg, Policy: lzPolicy{}, Telemetry: tel})
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewSession(e)
	block := datagen.OISTransactions(pipeBlockSize, 0.9, 23)
	send := func([]byte) (time.Duration, error) { return 0, nil }
	b.SetBytes(pipeBlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TransmitBlock(block, nil, send); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransmitTracedOff(b *testing.B)    { benchmarkTransmitTraced(b, -1) }
func BenchmarkTransmitTraced1Pct(b *testing.B)   { benchmarkTransmitTraced(b, 0.01) }
func BenchmarkTransmitTracedAlways(b *testing.B) { benchmarkTransmitTraced(b, 1) }

// TestTracingOverheadGate measures the per-block cost of the span plane at
// 1% sampling against a tracer-off run of the same engine and fails when
// the overhead exceeds tracingGate. Each side takes the best of three
// benchmark runs, which cancels one-off scheduler noise the same way the
// memcpy normalization does for the throughput gate. Set CCX_TRACE_BENCH=1
// to run it (the CI trace-smoke job does); otherwise it skips so
// `go test ./...` stays fast.
func TestTracingOverheadGate(t *testing.T) {
	if os.Getenv("CCX_TRACE_BENCH") == "" {
		t.Skip("set CCX_TRACE_BENCH=1 to measure tracing overhead")
	}
	best := func(rate float64) int64 {
		bestNs := int64(1<<63 - 1)
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) { benchmarkTransmitTraced(b, rate) })
			if ns := r.NsPerOp(); ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	off := best(-1)
	on := best(0.01)
	overhead := float64(on)/float64(off) - 1
	t.Logf("tracer off %d ns/block, 1%% sampling %d ns/block: overhead %+.2f%% (gate %.0f%%)",
		off, on, overhead*100, tracingGate*100)
	if overhead > tracingGate {
		t.Errorf("tracing at 1%% sampling costs %+.2f%%/block, budget is +1%% (gate %.0f%%)",
			overhead*100, tracingGate*100)
	}
}

// benchWorkerCounts covers the sequential loop, the canonical 4-worker
// pipeline, and the machine's full width (deduplicated).
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func mbPerSec(r testing.BenchmarkResult, bytesPerOp int) float64 {
	if r.T <= 0 {
		return 0
	}
	return float64(r.N) * float64(bytesPerOp) / r.T.Seconds() / 1e6
}

// benchSHA resolves the commit under test: CCX_BENCH_SHA when the harness
// provides it (CI), otherwise git, otherwise "unknown".
func benchSHA() string {
	if sha := os.Getenv("CCX_BENCH_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
