package integration

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/faultnet"
	"ccx/internal/metrics"
)

// dumpFaultMetrics appends one labeled JSON line with the case's final
// metrics snapshot to $CCX_METRICS_OUT. CI uploads the file as a build
// artifact, giving every run a comparable record of how each fault plan
// moved the counters; locally the variable is unset and this is a no-op.
func dumpFaultMetrics(t *testing.T, name string, met *metrics.Registry) {
	path := os.Getenv("CCX_METRICS_OUT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("CCX_METRICS_OUT: %v", err)
	}
	defer f.Close()
	line := map[string]any{"case": name, "metrics": met.Snapshot()}
	if err := json.NewEncoder(f).Encode(line); err != nil {
		t.Fatalf("CCX_METRICS_OUT: %v", err)
	}
}

// TestFaultMatrix runs the full publish path — ccsend-style frame writer →
// TCP → broker → per-subscriber adaptation → ccrecv-style frame reader —
// under a matrix of injected link faults. Whatever the link does, the
// invariants hold: no panic, no goroutine leak, every delivered block is
// byte-identical to its original, and checksum-detectable damage shows up
// in the broker.corrupt_frames counter.
func TestFaultMatrix(t *testing.T) {
	const (
		nBlocks   = 48
		blockSize = 16 << 10
	)
	blocks := make([][]byte, nBlocks)
	for i := range blocks {
		b := datagen.OISTransactions(blockSize, 0.9, int64(i+1))
		binary.BigEndian.PutUint32(b[:4], uint32(i))
		blocks[i] = b
	}

	cases := []struct {
		name string
		plan faultnet.Plan
		// wantAll: every block must arrive (the fault damages nothing).
		wantAll bool
		// wantCorrupt: the broker must count at least one corrupt frame.
		wantCorrupt bool
		// wantPubErr: the publisher's own writes are allowed to fail.
		wantPubErr bool
	}{
		{name: "clean", wantAll: true},
		{name: "bitflip_per_64k", plan: faultnet.Plan{FlipPer: 64 << 10, Seed: 7}, wantCorrupt: true},
		{name: "midstream_truncation", plan: faultnet.Plan{DropAt: 100 << 10, DropLen: 1500, Seed: 3}, wantCorrupt: true},
		{name: "midframe_stall", plan: faultnet.Plan{StallAt: 200 << 10, Stall: 250 * time.Millisecond, Seed: 5}, wantAll: true},
		{name: "abrupt_reset", plan: faultnet.Plan{ResetAt: 256 << 10, Seed: 9}, wantPubErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()

			met := metrics.NewRegistry()
			b, err := broker.New(broker.Config{
				Channels:  []string{"md"},
				Heartbeat: -1,
				Metrics:   met,
				Logf:      func(string, ...any) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- b.Serve(ln) }()

			// Subscriber: collect delivered blocks by their stamped index.
			subConn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer subConn.Close()
			if err := broker.HandshakeSubscribe(subConn, "md"); err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			got := make(map[uint32][]byte)
			subDone := make(chan struct{})
			go func() {
				defer close(subDone)
				fr := codec.NewFrameReader(subConn, nil)
				for {
					data, _, err := fr.ReadBlock()
					if err != nil {
						return
					}
					if len(data) < 4 {
						continue // keepalive
					}
					mu.Lock()
					got[binary.BigEndian.Uint32(data[:4])] = append([]byte(nil), data...)
					mu.Unlock()
				}
			}()
			received := func() int {
				mu.Lock()
				defer mu.Unlock()
				return len(got)
			}

			// Publisher: handshake on the clean conn, then every frame goes
			// through the fault plan.
			pubConn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			if err := broker.HandshakePublish(pubConn, "md"); err != nil {
				t.Fatal(err)
			}
			pub := faultnet.Wrap(pubConn, tc.plan)
			var pubErr error
			for _, block := range blocks {
				frame, _, err := codec.AppendFrame(nil, nil, codec.None, block)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := pub.Write(frame); err != nil {
					pubErr = err
					break
				}
			}
			pub.Close()

			// The publisher is done; wait for the broker's intake to go
			// quiet and the subscriber to catch up with everything ingested.
			eventsIn := met.Counter("broker.events_in")
			deadline := time.Now().Add(10 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatalf("delivery never settled: %d ingested, %d received",
						eventsIn.Value(), received())
				}
				before := eventsIn.Value()
				time.Sleep(75 * time.Millisecond)
				if eventsIn.Value() == before && int64(received()) == before {
					break
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := b.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			if err := <-serveDone; err != nil {
				t.Fatalf("serve: %v", err)
			}
			select {
			case <-subDone:
			case <-time.After(5 * time.Second):
				t.Fatal("subscriber loop never ended after shutdown")
			}
			dumpFaultMetrics(t, tc.name, met)

			// Delivered blocks must be byte-identical to their originals —
			// corruption may drop blocks, never alter them.
			mu.Lock()
			for idx, data := range got {
				if int(idx) >= len(blocks) {
					t.Fatalf("delivered unknown block index %d", idx)
				}
				if !bytes.Equal(data, blocks[idx]) {
					t.Fatalf("block %d delivered with wrong bytes", idx)
				}
			}
			n := len(got)
			mu.Unlock()

			if tc.wantAll && n != nBlocks {
				t.Fatalf("delivered %d of %d blocks over a lossless plan", n, nBlocks)
			}
			if !tc.wantAll && n == 0 {
				t.Fatal("fault plan destroyed every single block")
			}
			corrupt := met.Counter("broker.corrupt_frames").Value()
			if tc.wantCorrupt && corrupt == 0 {
				t.Fatal("corrupt frames reached the broker but the counter stayed 0")
			}
			if !tc.wantCorrupt && !tc.wantPubErr && corrupt != 0 {
				t.Fatalf("unexpected corrupt frames: %d", corrupt)
			}
			if tc.wantPubErr {
				if !errors.Is(pubErr, faultnet.ErrInjectedReset) {
					t.Fatalf("publisher error = %v, want injected reset", pubErr)
				}
			} else if pubErr != nil {
				t.Fatalf("publisher failed: %v", pubErr)
			}

			// Everything the run spawned — serve loop, broker sessions,
			// subscriber reader — must be gone.
			waitDeadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > baseline {
				if time.Now().After(waitDeadline) {
					t.Fatalf("goroutine leak: %d > baseline %d", runtime.NumGoroutine(), baseline)
				}
				runtime.GC()
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}
