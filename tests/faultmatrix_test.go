package integration

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/faultnet"
	"ccx/internal/metrics"
	"ccx/internal/netutil"
	"ccx/internal/testx"
)

// TestFaultMatrix runs the full publish path — ccsend-style frame writer →
// TCP → broker → per-subscriber adaptation → ccrecv-style frame reader —
// under a matrix of injected link faults. Whatever the link does, the
// invariants hold: no panic, no goroutine leak, every delivered block is
// byte-identical to its original, and checksum-detectable damage shows up
// in the broker.corrupt_frames counter.
func TestFaultMatrix(t *testing.T) {
	const (
		nBlocks   = 48
		blockSize = 16 << 10
	)
	blocks := make([][]byte, nBlocks)
	for i := range blocks {
		b := datagen.OISTransactions(blockSize, 0.9, int64(i+1))
		binary.BigEndian.PutUint32(b[:4], uint32(i))
		blocks[i] = b
	}

	cases := []struct {
		name string
		plan faultnet.Plan
		// wantAll: every block must arrive (the fault damages nothing).
		wantAll bool
		// wantCorrupt: the broker must count at least one corrupt frame.
		wantCorrupt bool
		// wantPubErr: the publisher's own writes are allowed to fail.
		wantPubErr bool
	}{
		{name: "clean", wantAll: true},
		{name: "bitflip_per_64k", plan: faultnet.Plan{FlipPer: 64 << 10, Seed: 7}, wantCorrupt: true},
		{name: "midstream_truncation", plan: faultnet.Plan{DropAt: 100 << 10, DropLen: 1500, Seed: 3}, wantCorrupt: true},
		{name: "midframe_stall", plan: faultnet.Plan{StallAt: 200 << 10, Stall: 250 * time.Millisecond, Seed: 5}, wantAll: true},
		{name: "abrupt_reset", plan: faultnet.Plan{ResetAt: 256 << 10, Seed: 9}, wantPubErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			guard := testx.GoroutineGuard(t, 0)

			met := metrics.NewRegistry()
			b, err := broker.New(broker.Config{
				Channels:  []string{"md"},
				Heartbeat: -1,
				Metrics:   met,
				Logf:      func(string, ...any) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- b.Serve(ln) }()

			// Subscriber: collect delivered blocks by their stamped index.
			subConn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer subConn.Close()
			if err := broker.HandshakeSubscribe(subConn, "md"); err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			got := make(map[uint32][]byte)
			subDone := make(chan struct{})
			go func() {
				defer close(subDone)
				fr := codec.NewFrameReader(subConn, nil)
				for {
					data, _, err := fr.ReadBlock()
					if err != nil {
						return
					}
					if len(data) < 4 {
						continue // keepalive
					}
					mu.Lock()
					got[binary.BigEndian.Uint32(data[:4])] = append([]byte(nil), data...)
					mu.Unlock()
				}
			}()
			received := func() int {
				mu.Lock()
				defer mu.Unlock()
				return len(got)
			}

			// Publisher: handshake on the clean conn, then every frame goes
			// through the fault plan.
			pubConn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			if err := broker.HandshakePublish(pubConn, "md"); err != nil {
				t.Fatal(err)
			}
			pub := faultnet.Wrap(pubConn, tc.plan)
			var pubErr error
			for _, block := range blocks {
				frame, _, err := codec.AppendFrame(nil, nil, codec.None, block)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := pub.Write(frame); err != nil {
					pubErr = err
					break
				}
			}
			pub.Close()

			// The publisher is done; wait for the broker's intake to go
			// quiet and the subscriber to catch up with everything ingested.
			eventsIn := met.Counter("broker.events_in")
			deadline := time.Now().Add(10 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatalf("delivery never settled: %d ingested, %d received",
						eventsIn.Value(), received())
				}
				before := eventsIn.Value()
				time.Sleep(75 * time.Millisecond)
				if eventsIn.Value() == before && int64(received()) == before {
					break
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := b.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			if err := <-serveDone; err != nil {
				t.Fatalf("serve: %v", err)
			}
			select {
			case <-subDone:
			case <-time.After(5 * time.Second):
				t.Fatal("subscriber loop never ended after shutdown")
			}
			testx.DumpMetrics(t, tc.name, met)

			// Delivered blocks must be byte-identical to their originals —
			// corruption may drop blocks, never alter them.
			mu.Lock()
			for idx, data := range got {
				if int(idx) >= len(blocks) {
					t.Fatalf("delivered unknown block index %d", idx)
				}
				testx.ByteIdentity(t, fmt.Sprintf("block %d", idx), data, blocks[idx])
			}
			n := len(got)
			mu.Unlock()

			if tc.wantAll && n != nBlocks {
				t.Fatalf("delivered %d of %d blocks over a lossless plan", n, nBlocks)
			}
			if !tc.wantAll && n == 0 {
				t.Fatal("fault plan destroyed every single block")
			}
			corrupt := met.Counter("broker.corrupt_frames").Value()
			if tc.wantCorrupt && corrupt == 0 {
				t.Fatal("corrupt frames reached the broker but the counter stayed 0")
			}
			if !tc.wantCorrupt && !tc.wantPubErr && corrupt != 0 {
				t.Fatalf("unexpected corrupt frames: %d", corrupt)
			}
			if tc.wantPubErr {
				if !errors.Is(pubErr, faultnet.ErrInjectedReset) {
					t.Fatalf("publisher error = %v, want injected reset", pubErr)
				}
			} else if pubErr != nil {
				t.Fatalf("publisher failed: %v", pubErr)
			}

			// Everything the run spawned — serve loop, broker sessions,
			// subscriber reader — must be gone.
			guard()
		})
	}
}

// TestReconnectResume runs the resumable-session path under link faults:
// the subscriber's first connection dies (abrupt TCP reset mid-stream, or
// a mid-frame stall caught by a read watchdog), and the redial resumes
// with the last contiguously delivered sequence. Invariants: every block
// arrives exactly once, in order, byte-identical; zero duplicate sequences
// reach the consumer; and when the replay window cannot cover the outage
// the gap is explicit — counted on both broker and receiver — never a
// silent skip.
func TestReconnectResume(t *testing.T) {
	const (
		nBlocks   = 48
		blockSize = 16 << 10
	)
	blocks := make([][]byte, nBlocks)
	for i := range blocks {
		b := datagen.OISTransactions(blockSize, 0.9, int64(100+i))
		blocks[i] = b
	}

	cases := []struct {
		name string
		// plan shapes the subscriber's FIRST connection; redials are clean.
		plan faultnet.Plan
		// watchdog is the subscriber's rolling read deadline (0 = none).
		watchdog time.Duration
		// replayBlocks bounds the broker's replay window.
		replayBlocks int
		// wantGap: the window cannot cover the resume point; expect an
		// explicit gap instead of full delivery.
		wantGap bool
	}{
		{
			name:         "abrupt_reset_midstream",
			plan:         faultnet.Plan{ResetAt: 96 << 10, Seed: 11},
			replayBlocks: 256,
		},
		{
			name:         "midframe_stall_watchdog",
			plan:         faultnet.Plan{StallAt: 96 << 10, Stall: 5 * time.Second, Seed: 13},
			watchdog:     400 * time.Millisecond,
			replayBlocks: 256,
		},
		{
			name:         "window_overflow_reports_gap",
			plan:         faultnet.Plan{}, // no fault: the gap comes from the tiny window
			replayBlocks: 4,
			wantGap:      true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			met := metrics.NewRegistry()
			b, err := broker.New(broker.Config{
				Channels:     []string{"md"},
				Heartbeat:    -1,
				ReplayBlocks: tc.replayBlocks,
				ReplayBytes:  64 << 20,
				Metrics:      met,
				Logf:         func(string, ...any) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- b.Serve(ln) }()

			// Publish the whole stream up front: the replay window is the
			// only path to the early blocks, exactly the resume scenario.
			for _, blk := range blocks {
				if err := b.Publish("md", blk); err != nil {
					t.Fatal(err)
				}
			}

			// Subscriber: resume-dial until the stream is complete, applying
			// the fault plan to the first connection only (one outage).
			track := new(core.DeliveryTracker)
			delivered := make(map[uint64][]byte)
			deliveredOrder := []uint64{}
			var dupDelivered int
			var gapFromHandshake uint64
			wantLast := uint64(nBlocks)
			for attempt := 0; attempt < 10; attempt++ {
				if last, ok := track.LastDelivered(); ok && last >= wantLast {
					break
				}
				err := func() error {
					conn, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						return err
					}
					defer conn.Close()
					var link net.Conn = conn
					if attempt == 0 && (tc.plan.ResetAt > 0 || tc.plan.StallAt > 0) {
						link = faultnet.Wrap(conn, tc.plan)
					}
					last, _ := track.LastDelivered()
					firstSeq, err := broker.HandshakeResume(link, "md", last)
					if err != nil {
						return err
					}
					if firstSeq > last+1 {
						gap := firstSeq - last - 1
						gapFromHandshake += gap
						track.NoteGap(gap)
						track.SkipTo(firstSeq)
					}
					fr := codec.NewFrameReader(netutil.WithTimeouts(link, tc.watchdog, 0), nil)
					for {
						data, info, err := fr.ReadBlock()
						if err != nil {
							return err
						}
						if len(data) == 0 {
							continue
						}
						if !info.HasSeq {
							t.Fatal("broker delivered an unsequenced event")
						}
						deliver, _ := track.Observe(info.Seq)
						if !deliver {
							continue
						}
						if _, seen := delivered[info.Seq]; seen {
							dupDelivered++
						}
						delivered[info.Seq] = append([]byte(nil), data...)
						deliveredOrder = append(deliveredOrder, info.Seq)
						if info.Seq >= wantLast {
							return nil
						}
					}
				}()
				if err == nil {
					break
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := b.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			if err := <-serveDone; err != nil {
				t.Fatalf("serve: %v", err)
			}
			testx.DumpMetrics(t, "reconnect_"+tc.name, met)

			// Exactly-once: no sequence may reach the consumer twice, and
			// the delivered order must be strictly increasing.
			if dupDelivered != 0 {
				t.Fatalf("%d duplicate sequences delivered", dupDelivered)
			}
			for i := 1; i < len(deliveredOrder); i++ {
				if deliveredOrder[i] <= deliveredOrder[i-1] {
					t.Fatalf("out-of-order delivery: seq %d after %d",
						deliveredOrder[i], deliveredOrder[i-1])
				}
			}
			// Byte-identity for everything delivered.
			for seq, data := range delivered {
				testx.ByteIdentity(t, fmt.Sprintf("block seq %d", seq), data, blocks[seq-1])
			}

			st := track.Stats()
			if tc.wantGap {
				if gapFromHandshake == 0 || st.GapBlocks == 0 {
					t.Fatal("window overflow produced no explicit gap")
				}
				if met.Counter("broker.resume_gaps").Value() == 0 {
					t.Fatal("broker.resume_gaps stayed 0 across a window overflow")
				}
				// Everything still inside the window must have arrived.
				if gapFromHandshake+uint64(len(delivered)) != nBlocks {
					t.Fatalf("gap %d + delivered %d != %d blocks",
						gapFromHandshake, len(delivered), nBlocks)
				}
			} else {
				// The window covered the outage: loss-free, every block once.
				if len(delivered) != nBlocks {
					t.Fatalf("delivered %d of %d blocks across the reconnect",
						len(delivered), nBlocks)
				}
				if st.GapBlocks != 0 {
					t.Fatalf("tracker reports %d lost blocks on a loss-free resume", st.GapBlocks)
				}
				if met.Counter("broker.resumes").Value() == 0 {
					t.Fatal("no resume handshake was counted")
				}
			}
		})
	}
}
