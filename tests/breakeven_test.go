// Break-even property test for auto placement: sweep simulated link rates
// around the measured Lempel-Ziv reducing speed and check that
// selector.PlacementAuto offloads compression downstream exactly where the
// goodput/reduce-time balance says it should — the DTSchedule observation
// reproduced over this repo's own codecs and netsim links.
//
// The sweep is self-calibrating: it first measures the codec's probe ratio
// and reducing speed on the test corpus (the same measurements the engine's
// decision loop consumes), derives the predicted crossover link rate
//
//	R* = ReducingSpeed / (1 - ProbeRatio)
//
// (offload while BlockLen/rate < BlockLen·(1-ratio)/speed, i.e. while the
// wire moves raw bytes faster than the codec sheds them), and then sweeps
// synthetic netsim profiles at fixed multiples of R* — from 32× faster than
// the codec down to 1/525×, the factor DTSchedule reports as the point where
// offloading finally loses. Because the factors are relative to *this*
// machine's measured codec speed, the assertions are stable across hardware.
//
// Artifacts: set CCX_BREAKEVEN_OUT=<path> to write the sweep as JSON;
// set CCX_BREAKEVEN_MD=<path to EXPERIMENTS.md> to rewrite the table
// between the "breakeven:begin/end" markers.
package integration

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/netsim"
	"ccx/internal/sampling"
	"ccx/internal/selector"
)

// breakevenRow is one link rate of the sweep, as reported in breakeven.json
// and the EXPERIMENTS.md table.
type breakevenRow struct {
	// Factor is the link rate as a multiple of the predicted crossover R*.
	Factor float64 `json:"factor"`
	// RateBps is the simulated link rate in bytes/s.
	RateBps float64 `json:"rate_bps"`
	// Steady is the auto engine's steady-state placement (majority of the
	// trailing half of the stream's per-block decisions).
	Steady string `json:"steady_placement"`
	// Offloaded counts blocks the auto engine shipped raw for downstream
	// compression, out of Blocks.
	Offloaded int `json:"offloaded_blocks"`
	Blocks    int `json:"blocks"`
	// PublisherSeconds / ReceiverSeconds are modelled end-to-end stream
	// times under the two pinned placements: publisher = real compress time
	// plus virtual link time of the compressed frames; receiver = virtual
	// link time of the raw frames (receiver-side decompression of raw
	// frames is a no-op). Receiver-side decode of *compressed* frames is
	// excluded from the publisher figure, which only favors publisher.
	PublisherSeconds float64 `json:"publisher_seconds"`
	ReceiverSeconds  float64 `json:"receiver_seconds"`
	// Speedup is PublisherSeconds / ReceiverSeconds: >1 means shipping raw
	// and (not) compressing downstream beat inline compression.
	Speedup float64 `json:"speedup"`
}

// breakevenReport is the CCX_BREAKEVEN_OUT JSON document.
type breakevenReport struct {
	BlockSize        int            `json:"block_size"`
	Blocks           int            `json:"blocks"`
	ReducingSpeedBps float64        `json:"reducing_speed_bps"`
	ProbeRatio       float64        `json:"probe_ratio"`
	CrossoverBps     float64        `json:"crossover_bps"`
	Rows             []breakevenRow `json:"rows"`
}

// breakevenFactors are the swept link rates as multiples of the predicted
// crossover R*. 32× is a LAN that dwarfs the codec; 1/525 is DTSchedule's
// reported break-even distance, where inline compression must win again.
var breakevenFactors = []float64{32, 8, 2, 1, 0.5, 1.0 / 8, 1.0 / 32, 1.0 / 128, 1.0 / 525}

// steadyPlacement reports the majority placement over the trailing half of
// the per-block decisions, where the goodput EWMA has converged.
func steadyPlacement(placements []selector.Placement) selector.Placement {
	tail := placements[len(placements)/2:]
	var counts [selector.NumPlacements]int
	for _, p := range tail {
		counts[p]++
	}
	best := selector.Placement(0)
	for p := selector.Placement(1); p < selector.NumPlacements; p++ {
		if counts[p] > counts[best] {
			best = p
		}
	}
	return best
}

// streamOver runs blocks through a fresh engine/session over a fresh
// simulated link at rateBps, returning per-block results and the virtual
// link time the stream consumed.
func streamOver(t *testing.T, blocks [][]byte, blockSize int, rateBps float64, plc selector.PlacementPolicy, pol selector.Policy) ([]core.BlockResult, time.Duration) {
	t.Helper()
	clock := netsim.NewVirtual()
	link := netsim.NewLink(netsim.Profile{
		Name:    fmt.Sprintf("sweep-%.0f", rateBps),
		RateBps: rateBps,
		// JitterFrac 0 and Latency 0 keep the sweep deterministic: the only
		// machine-dependent inputs are the codec timings, and the factors
		// are defined relative to those.
	}, clock, 1)

	cfg := core.Config{Placement: plc, Policy: pol}
	cfg.Selector = selector.DefaultConfig()
	cfg.Selector.BlockSize = blockSize
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	sess := core.NewSession(eng)
	results, err := sess.StreamBlocks(blocks, func(frame []byte) (time.Duration, error) {
		return link.Send(len(frame)), nil
	}, nil)
	if err != nil {
		t.Fatalf("stream at %.0f B/s: %v", rateBps, err)
	}
	return results, clock.Elapsed()
}

func TestPlacementBreakEven(t *testing.T) {
	const (
		blockSize = 32 << 10
		nBlocks   = 32
	)
	data := datagen.OISTransactions(nBlocks*blockSize, 0.9, 1)
	blocks := make([][]byte, nBlocks)
	for i := range blocks {
		blocks[i] = data[i*blockSize : (i+1)*blockSize]
	}

	// Calibrate with the engine's own instrument: the 4 KB Lempel-Ziv
	// sampling probe, averaged over every block. The sweep's factor=1 link
	// rate is the crossover these exact measurements predict, so the test
	// asserts the *property* (flip where predicted) rather than any absolute
	// machine-dependent rate.
	smp := &sampling.Sampler{}
	var sumSpeed, sumRatio float64
	for _, b := range blocks {
		pr := smp.Probe(b)
		if pr.ReducingSpeed <= 0 || pr.Ratio >= 1 {
			t.Fatalf("corpus block probed incompressible (ratio %.2f, speed %.0f); breakeven needs compressible data", pr.Ratio, pr.ReducingSpeed)
		}
		sumSpeed += pr.ReducingSpeed
		sumRatio += pr.Ratio
	}
	redSpeed := sumSpeed / float64(nBlocks)
	ratio := sumRatio / float64(nBlocks)
	crossover := redSpeed / (1 - ratio)
	t.Logf("calibration: reducing speed %.2f MB/s, probe ratio %.3f -> predicted crossover link rate %.2f MB/s",
		redSpeed/1e6, ratio, crossover/1e6)

	report := breakevenReport{
		BlockSize:        blockSize,
		Blocks:           nBlocks,
		ReducingSpeedBps: redSpeed,
		ProbeRatio:       ratio,
		CrossoverBps:     crossover,
	}

	auto := selector.PlacementPolicy{Mode: selector.PlacementAuto, Node: selector.PlacementPublisher}
	pinPub := selector.PlacementPolicy{Mode: selector.PlacementPublisher, Node: selector.PlacementPublisher}
	pinRecv := selector.PlacementPolicy{Mode: selector.PlacementReceiver, Node: selector.PlacementPublisher}

	for _, f := range breakevenFactors {
		rate := f * crossover

		// Auto run: what does the engine actually decide at this rate?
		results, _ := streamOver(t, blocks, blockSize, rate, auto, nil)
		placements := make([]selector.Placement, len(results))
		offloaded := 0
		for i, r := range results {
			placements[i] = r.Decision.Placement
			if r.Decision.Offloaded {
				offloaded++
			}
		}
		steady := steadyPlacement(placements)

		// Pinned runs: model the end-to-end cost of each choice. Publisher
		// pins Lempel-Ziv (the placement question is moot when the method
		// selector would ship raw anyway), so PublisherSeconds is real
		// compress time plus virtual wire time of the compressed frames;
		// ReceiverSeconds is the virtual wire time of the raw frames.
		pubRes, pubWire := streamOver(t, blocks, blockSize, rate, pinPub, pinPolicy{codec.LempelZiv})
		var compress time.Duration
		for _, r := range pubRes {
			compress += r.CompressTime
		}
		_, recvWire := streamOver(t, blocks, blockSize, rate, pinRecv, nil)

		pubSec := (compress + pubWire).Seconds()
		recvSec := recvWire.Seconds()
		row := breakevenRow{
			Factor:           f,
			RateBps:          rate,
			Steady:           steady.String(),
			Offloaded:        offloaded,
			Blocks:           len(results),
			PublisherSeconds: pubSec,
			ReceiverSeconds:  recvSec,
			Speedup:          pubSec / recvSec,
		}
		report.Rows = append(report.Rows, row)
		t.Logf("factor %8.4f (%.2f MB/s): steady=%-9s offloaded %2d/%d  publisher %.4fs receiver %.4fs (%.1fx)",
			f, rate/1e6, row.Steady, offloaded, len(results), pubSec, recvSec, row.Speedup)
	}

	// Property 1: decisively fast links offload (auto flips to receiver),
	// decisively slow links compress inline. Factors within [1/16, 16] of
	// the predicted crossover are left unasserted — probe timing noise moves
	// the measured flip point a little, and that tolerance is the point of
	// a *bracket* assertion.
	var minOffload, maxInline float64
	for _, row := range report.Rows {
		switch {
		case row.Factor >= 8 && row.Steady != "receiver":
			t.Errorf("factor %g (link %gx faster than codec): steady placement %s, want receiver", row.Factor, row.Factor, row.Steady)
		case row.Factor <= 1.0/32 && row.Steady != "publisher":
			t.Errorf("factor %g (link %gx slower than codec): steady placement %s, want publisher", row.Factor, 1/row.Factor, row.Steady)
		}
		if row.Steady == "receiver" && (minOffload == 0 || row.Factor < minOffload) {
			minOffload = row.Factor
		}
		if row.Steady == "publisher" && row.Factor > maxInline {
			maxInline = row.Factor
		}
	}

	// Property 2: the measured flip bracket contains the predicted
	// crossover (factor 1) within generous tolerance: no offloading deep in
	// slow territory, no inline compression deep in fast territory.
	if minOffload > 0 && minOffload < 1.0/16 {
		t.Errorf("auto offloaded at factor %g, far below the predicted crossover", minOffload)
	}
	if maxInline > 16 {
		t.Errorf("auto stayed inline at factor %g, far above the predicted crossover", maxInline)
	}
	t.Logf("flip bracket: inline up to factor %g, offloading from factor %g (predicted crossover 1.0)", maxInline, minOffload)

	// Property 3: the acceptance headline. On the fastest link, shipping raw
	// end to end beats pinned publisher-side compression at least 5x; at
	// DTSchedule's 1/525 distance, inline compression wins again.
	fastest, slowest := report.Rows[0], report.Rows[len(report.Rows)-1]
	if fastest.Speedup < 5 {
		t.Errorf("fast link (factor %g): receiver placement speedup %.2fx, want >= 5x", fastest.Factor, fastest.Speedup)
	}
	if slowest.Speedup >= 1 {
		t.Errorf("slow link (factor %g): publisher placement should win, got receiver speedup %.2fx", slowest.Factor, slowest.Speedup)
	}

	if path := os.Getenv("CCX_BREAKEVEN_OUT"); path != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatalf("marshal report: %v", err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		t.Logf("wrote %s", path)
	}
	if path := os.Getenv("CCX_BREAKEVEN_MD"); path != "" {
		if err := updateBreakevenSection(path, report); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		t.Logf("updated break-even table in %s", path)
	}
}

// updateBreakevenSection rewrites the generated table between the
// breakeven:begin / breakeven:end markers in EXPERIMENTS.md, leaving the
// hand-written prose around it alone.
func updateBreakevenSection(path string, rep breakevenReport) error {
	const begin, end = "<!-- breakeven:begin -->", "<!-- breakeven:end -->"
	old, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc := string(old)
	lo := strings.Index(doc, begin)
	hi := strings.Index(doc, end)
	if lo < 0 || hi < 0 || hi < lo {
		return fmt.Errorf("markers %q / %q not found", begin, end)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", begin)
	fmt.Fprintf(&b, "Calibration on this machine: Lempel-Ziv reducing speed %.2f MB/s,\nprobe ratio %.3f → predicted crossover link rate **%.2f MB/s**\n(%d blocks × %d KiB OIS transactions).\n\n",
		rep.ReducingSpeedBps/1e6, rep.ProbeRatio, rep.CrossoverBps/1e6, rep.Blocks, rep.BlockSize>>10)
	b.WriteString("| link rate (×crossover) | MB/s | auto steady placement | offloaded | publisher (s) | receiver (s) | receiver speedup |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range rep.Rows {
		factor := fmt.Sprintf("%g", r.Factor)
		if r.Factor < 1 {
			factor = fmt.Sprintf("1/%g", 1/r.Factor)
		}
		fmt.Fprintf(&b, "| %s | %.2f | %s | %d/%d | %.4f | %.4f | %.2f× |\n",
			factor, r.RateBps/1e6, r.Steady, r.Offloaded, r.Blocks, r.PublisherSeconds, r.ReceiverSeconds, r.Speedup)
	}
	b.WriteString(end)

	doc = doc[:lo] + b.String() + doc[hi+len(end):]
	return os.WriteFile(path, []byte(doc), 0o644)
}
