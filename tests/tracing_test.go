package integration

import (
	"bytes"
	"context"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/metrics"
	"ccx/internal/selector"
	"ccx/internal/tracing"
)

// dumpSpans merges every hop's span ring into one JSONL file at
// $CCX_SPANS_OUT. CI uploads it as the trace-smoke artifact — a real
// three-hop span dump anyone can feed to cctrace; locally the variable is
// unset and this is a no-op.
func dumpSpans(t *testing.T, tracers ...*tracing.Tracer) {
	path := os.Getenv("CCX_SPANS_OUT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("CCX_SPANS_OUT: %v", err)
	}
	defer f.Close()
	for _, tr := range tracers {
		if err := tr.Ring().WriteJSONL(f, 0); err != nil {
			t.Fatalf("CCX_SPANS_OUT: %v", err)
		}
	}
}

// TestTraceSmokeThreeHop runs the full ccsend → ccbroker → ccrecv path with
// a tracer on every hop (publisher sampling at 1.0, the way a debugging
// operator would run it) and garbage bytes injected mid-stream on the
// publisher link to force a broker resync. It then stitches the three span
// dumps exactly as cctrace does and checks the contract the tool depends
// on: at least one trace crossed all three hops, every complete trace's
// critical-path attribution sums to its end-to-end duration, and the
// forced resync shows up in the anomaly roll-up.
func TestTraceSmokeThreeHop(t *testing.T) {
	const (
		blockSize = 16 << 10
		nBlocks   = 12
	)
	pubTr := tracing.New("ccsend", 1, 4096)
	brkTr := tracing.New("ccbroker", 0, 4096)
	rcvTr := tracing.New("ccrecv", 0, 4096)

	met := metrics.NewRegistry()
	b, err := broker.New(broker.Config{
		Channels:  []string{"md"},
		Heartbeat: -1,
		Metrics:   met,
		Tracer:    brkTr,
		Logf:      func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- b.Serve(ln) }()

	// Receiver hop: a traced Reader draining the subscription.
	subConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer subConn.Close()
	if err := broker.HandshakeSubscribe(subConn, "md"); err != nil {
		t.Fatal(err)
	}
	var received bytes.Buffer
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		r := core.NewReader(subConn, nil, nil)
		r.SetTelemetry(core.Telemetry{Tracer: rcvTr, Stream: "recv"})
		io.Copy(&received, r)
	}()

	// Publisher hop: a traced adaptive writer. Full-block writes flush
	// synchronously, so the garbage lands exactly between two frames.
	pubConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.HandshakePublish(pubConn, "md"); err != nil {
		t.Fatal(err)
	}
	cfg := selector.DefaultConfig()
	cfg.BlockSize = blockSize
	engine, err := core.NewEngine(core.Config{
		Selector:  cfg,
		Telemetry: core.Telemetry{Tracer: pubTr, Stream: "send"},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := datagen.OISTransactions(nBlocks*blockSize, 0.9, 7)
	w := core.NewWriter(pubConn, engine, nil)
	if _, err := w.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	// 0xEE never matches the frame magic, so the broker must scan to the
	// next real boundary — an always-on resync anomaly span.
	if _, err := pubConn.Write(bytes.Repeat([]byte{0xEE}, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data[len(data)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pubConn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	select {
	case <-subDone:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never saw EOF")
	}
	if !bytes.Equal(received.Bytes(), data) {
		t.Fatalf("subscriber got %d bytes, want %d identical", received.Len(), len(data))
	}

	dumpSpans(t, pubTr, brkTr, rcvTr)

	// Stitch the three hop dumps the way cctrace does.
	spans := pubTr.Ring().Recent(0)
	spans = append(spans, brkTr.Ring().Recent(0)...)
	spans = append(spans, rcvTr.Ring().Recent(0)...)
	rep := tracing.Stitch(spans)

	if rep.Origin != "ccsend" {
		t.Errorf("stitched origin = %q, want ccsend", rep.Origin)
	}
	complete := rep.Complete(3)
	if len(complete) == 0 {
		t.Fatalf("no trace crossed all 3 hops (stitched %d traces from %d spans)",
			len(rep.Traces), len(spans))
	}
	for _, tr := range complete {
		var sum int64
		for _, c := range tr.Attribution() {
			sum += c.Ns
		}
		if sum != tr.Duration() {
			t.Errorf("trace %x: attribution sums to %dns, duration is %dns",
				tr.ID, sum, tr.Duration())
		}
		hops := make(map[string]bool)
		for _, s := range tr.Spans {
			hops[s.Hop] = true
		}
		for _, hop := range []string{"ccsend", "ccbroker", "ccrecv"} {
			if !hops[hop] {
				t.Errorf("trace %x missing hop %s", tr.ID, hop)
			}
		}
	}
	resyncs := 0
	for _, s := range rep.Anomalies {
		if s.Stage == tracing.StageResync && s.Hop == "ccbroker" {
			resyncs++
		}
	}
	if resyncs == 0 {
		t.Fatalf("forced corruption left no resync anomaly span; anomalies: %+v", rep.Anomalies)
	}
}
