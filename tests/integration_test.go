// Package integration exercises whole-system flows across package
// boundaries: adaptive streams over simulated and real transports, the
// middleware path across address spaces, and the failure modes DESIGN.md
// §7 calls out (mid-stream corruption, truncation, link flap, receiver
// slowdown).
package integration

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/echo"
	"ccx/internal/netsim"
	"ccx/internal/selector"
	"ccx/internal/trace"
)

func newEngine(t *testing.T, blockSize int) *core.Engine {
	t.Helper()
	cfg := selector.DefaultConfig()
	cfg.BlockSize = blockSize
	e, err := core.NewEngine(core.Config{Selector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLinkFlapAdaptation drives a session across repeated load flaps and
// verifies (a) every byte survives, (b) the engine actually switches
// methods in both directions.
func TestLinkFlapAdaptation(t *testing.T) {
	clk := netsim.NewVirtual()
	link := netsim.NewLink(netsim.Fast100, clk, 17)
	flapped := false
	blockCount := 0
	link.SetLoad(func(time.Time) float64 {
		if flapped {
			return 0.98
		}
		return 0
	})

	tick := time.Unix(0, 0)
	cfg := selector.DefaultConfig()
	cfg.BlockSize = 32 << 10
	engine, err := core.NewEngine(core.Config{
		Selector:   cfg,
		Now:        func() time.Time { tick = tick.Add(time.Millisecond); return tick },
		SpeedScale: (0.7 * 4096 / 0.001) / 2.2e6, // paper-CPU regime
	})
	if err != nil {
		t.Fatal(err)
	}

	data := datagen.OISTransactions(cfg.BlockSize*40, 0.9, 3)
	var wire bytes.Buffer
	send := func(frame []byte) (time.Duration, error) {
		wire.Write(frame)
		blockCount++
		if blockCount%8 == 0 {
			flapped = !flapped // flap every 8 blocks
		}
		return link.Send(len(frame)), nil
	}
	s := core.NewSession(engine)
	results, err := s.Stream(data, send, nil)
	if err != nil {
		t.Fatal(err)
	}

	transitions := 0
	for i := 1; i < len(results); i++ {
		a := results[i-1].Decision.Method != codec.None
		b := results[i].Decision.Method != codec.None
		if a != b {
			transitions++
		}
	}
	if transitions < 3 {
		t.Fatalf("only %d compression on/off transitions across flaps", transitions)
	}

	// Full stream must decode exactly.
	fr := codec.NewFrameReader(&wire, nil)
	var got bytes.Buffer
	for got.Len() < len(data) {
		block, _, err := fr.ReadBlock()
		if err != nil {
			t.Fatal(err)
		}
		got.Write(block)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("flapped stream did not roundtrip")
	}
}

// TestMidStreamCorruptionIsolated corrupts one frame of a multi-frame
// stream: every earlier block must decode intact and the damage must be
// detected exactly at the corrupted frame.
func TestMidStreamCorruptionIsolated(t *testing.T) {
	engine := newEngine(t, 8<<10)
	engine.Monitor().Observe(8<<10, time.Second) // slow-line belief → compression

	data := datagen.OISTransactions(80<<10, 0.9, 5)
	var wire bytes.Buffer
	var offsets []int
	s := core.NewSession(engine)
	if _, err := s.Stream(data, func(frame []byte) (time.Duration, error) {
		offsets = append(offsets, wire.Len())
		wire.Write(frame)
		return time.Millisecond, nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if len(offsets) < 5 {
		t.Fatalf("only %d frames", len(offsets))
	}
	raw := wire.Bytes()
	// Flip a byte inside the 4th frame's payload.
	corruptAt := offsets[3] + 20
	raw[corruptAt] ^= 0x40

	fr := codec.NewFrameReader(bytes.NewReader(raw), nil)
	var decoded int
	for {
		block, _, err := fr.ReadBlock()
		if err != nil {
			if decoded != 3 {
				t.Fatalf("error after %d blocks, want 3", decoded)
			}
			break
		}
		if !bytes.Equal(block, data[decoded*(8<<10):decoded*(8<<10)+len(block)]) {
			t.Fatalf("block %d content wrong", decoded)
		}
		decoded++
		if decoded > 3 {
			t.Fatal("corrupted frame decoded cleanly")
		}
	}
}

// TestTruncationAtEveryBoundary truncates a compressed stream at many
// points; the reader must fail cleanly (no panic, no silent wrong data).
func TestTruncationAtEveryBoundary(t *testing.T) {
	engine := newEngine(t, 4<<10)
	engine.Monitor().Observe(4<<10, time.Second)
	data := datagen.OISTransactions(20<<10, 0.9, 7)
	var wire bytes.Buffer
	s := core.NewSession(engine)
	if _, err := s.Stream(data, func(frame []byte) (time.Duration, error) {
		wire.Write(frame)
		return time.Millisecond, nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()
	for cut := 0; cut < len(raw); cut += 97 {
		fr := codec.NewFrameReader(bytes.NewReader(raw[:cut]), nil)
		var rebuilt []byte
		var err error
		for {
			var block []byte
			block, _, err = fr.ReadBlock()
			if err != nil {
				break
			}
			rebuilt = append(rebuilt, block...)
		}
		if err == io.EOF {
			// Clean EOF is only legal at a frame boundary; whatever decoded
			// must be a prefix of the original.
			if !bytes.HasPrefix(data, rebuilt) {
				t.Fatalf("cut %d: clean EOF with wrong data", cut)
			}
		}
	}
}

// TestGarbageStreamNeverPanics throws random bytes at the frame reader.
func TestGarbageStreamNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		junk := make([]byte, rng.Intn(4096))
		rng.Read(junk)
		// Sometimes make it look frame-ish.
		if trial%3 == 0 && len(junk) > 2 {
			junk[0], junk[1] = 0xEC, 0x40
		}
		fr := codec.NewFrameReader(bytes.NewReader(junk), nil)
		for {
			if _, _, err := fr.ReadBlock(); err != nil {
				break
			}
		}
	}
}

// TestReceiverSlowdownOverTCP verifies the end-to-end loop on a real
// socket: when the receiver drains slowly, backpressure drives the sender
// into compression.
func TestReceiverSlowdownOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		r := core.NewReader(conn, nil, nil)
		var out bytes.Buffer
		buf := make([]byte, 4<<10)
		for {
			n, err := r.Read(buf)
			out.Write(buf[:n])
			time.Sleep(12 * time.Millisecond) // persistently slow consumer
			if err != nil {
				break
			}
		}
		done <- out.Bytes()
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(16 << 10)
	}
	engine := newEngine(t, 64<<10)
	data := datagen.OISTransactions(2<<20, 0.9, 9)
	compressedBlocks := 0
	w := core.NewWriter(conn, engine, func(r core.BlockResult) {
		if r.Decision.Method != codec.None {
			compressedBlocks++
		}
	})
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	got := <-done
	if !bytes.Equal(got, data) {
		t.Fatalf("TCP roundtrip mismatch: %d vs %d bytes", len(got), len(data))
	}
	if compressedBlocks == 0 {
		t.Fatal("sender never compressed despite a persistently slow receiver")
	}
}

// TestChannelSwitchover reproduces §3.2's operational story end to end: a
// consumer starts on the raw channel, decides the exchange is too slow,
// derives a compressed channel, subscribes to it and unsubscribes from the
// original — without touching the producer.
func TestChannelSwitchover(t *testing.T) {
	c1, c2 := net.Pipe()
	prodDomain, consDomain := echo.NewDomain(), echo.NewDomain()
	b1, b2 := echo.NewBridge(prodDomain, c1), echo.NewBridge(consDomain, c2)
	defer func() {
		b1.Close()
		b2.Close()
		<-b1.Done()
		<-b2.Done()
	}()

	engine := newEngine(t, 16<<10)
	engine.Monitor().Observe(16<<10, time.Second)
	raw := prodDomain.OpenChannel("stream")
	if _, err := core.DeriveCompressed(raw, "stream.z", engine); err != nil {
		t.Fatal(err)
	}

	// Phase 1: consumer on the raw channel.
	rawImported, err := b2.ImportChannel("stream")
	if err != nil {
		t.Fatal(err)
	}
	gotRaw := make(chan int, 8)
	rawSub := rawImported.Subscribe(func(ev echo.Event) { gotRaw <- len(ev.Data) })

	waitSubs := func(name string, want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if ch, ok := prodDomain.Channel(name); ok && ch.Subscribers() >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("subscription on %s never arrived", name)
	}
	// The raw channel already has one subscriber: the derived channel.
	waitSubs("stream", 2)

	payload := datagen.OISTransactions(16<<10, 0.9, 2)
	if err := raw.Submit(echo.Event{Data: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-gotRaw:
		if n != len(payload) {
			t.Fatalf("raw phase: got %d bytes", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("raw event never arrived")
	}

	// Phase 2: switch to the compressed channel.
	zImported, err := b2.ImportChannel("stream.z")
	if err != nil {
		t.Fatal(err)
	}
	gotZ := make(chan codec.BlockInfo, 8)
	core.SubscribeDecompressed(zImported, nil, 0, func(data []byte, info codec.BlockInfo) {
		if !bytes.Equal(data, payload) {
			t.Error("compressed phase payload mismatch")
		}
		gotZ <- info
	})
	rawSub.Cancel()
	if err := b2.UnimportChannel("stream"); err != nil {
		t.Fatal(err)
	}
	waitSubs("stream.z", 1)
	// Let the unsubscribe land so the raw path is actually closed.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ch, _ := prodDomain.Channel("stream"); ch.Subscribers() == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if err := raw.Submit(echo.Event{Data: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case info := <-gotZ:
		if info.Method == codec.None {
			t.Fatalf("switchover phase: expected compression, got %v", info.Method)
		}
		if info.CompLen >= info.OrigLen {
			t.Fatal("no size reduction after switchover")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("compressed event never arrived")
	}
	select {
	case <-gotRaw:
		t.Fatal("raw subscription still delivering after switchover")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestMBoneScenarioEndToEnd is a compact version of the Figure 8 run as an
// integration test: the full stack (trace → load → link → engine → frames →
// decode) with the invariant that everything decodes and adaptation spans
// at least three methods.
func TestMBoneScenarioEndToEnd(t *testing.T) {
	clk := netsim.NewVirtual()
	start := clk.Now()
	prof := netsim.Fast100
	prof.RateBps /= 32
	link := netsim.NewLink(prof, clk, 1)
	tr := trace.MBoneSynthetic(1)
	link.SetLoad(tr.LoadFunc(trace.DefaultLoadConfig(prof, start), prof))

	tick := time.Unix(0, 0)
	cfg := selector.DefaultConfig()
	cfg.BlockSize = 4 << 10
	engine, err := core.NewEngine(core.Config{
		Selector:   cfg,
		Now:        func() time.Time { tick = tick.Add(time.Millisecond); return tick },
		SpeedScale: (0.7 * 4096 / 0.001) / (2.2e6 / 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := datagen.OISTransactions(1<<20, 0.9, 1)
	var wire bytes.Buffer
	methods := map[codec.Method]bool{}
	s := core.NewSession(engine)
	blocks := 0
	for off := 0; clk.Now().Sub(start) < 160*time.Second; off = (off + cfg.BlockSize) % (len(data) - cfg.BlockSize) {
		res, err := s.TransmitBlock(data[off:off+cfg.BlockSize], nil, func(frame []byte) (time.Duration, error) {
			wire.Write(frame)
			return link.Send(len(frame)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		methods[res.Decision.Method] = true
		blocks++
	}
	if len(methods) < 3 {
		t.Fatalf("adaptation too static: methods used = %v over %d blocks", methods, blocks)
	}
	fr := codec.NewFrameReader(&wire, nil)
	decoded := 0
	for {
		if _, _, err := fr.ReadBlock(); err != nil {
			if err != io.EOF {
				t.Fatalf("decode after %d blocks: %v", decoded, err)
			}
			break
		}
		decoded++
	}
	if decoded != blocks {
		t.Fatalf("decoded %d of %d blocks", decoded, blocks)
	}
}
