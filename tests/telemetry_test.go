package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/metrics"
	"ccx/internal/obs"
	"ccx/internal/selector"
)

// TestDebugPlaneEndToEnd runs the full ccsend → ccbroker → ccrecv path with
// the observability plane attached, the way `ccbroker -debug` wires it, and
// audits the plane from the outside over HTTP:
//
//	(a) GET /metrics is valid Prometheus text exposition including at
//	    least one histogram family with cumulative buckets;
//	(b) GET /debug/decisions returns the per-block trace, and the methods
//	    it claims were chosen match the methods actually observed in the
//	    frames on the wire, block for block;
//	(c) GET /debug/vars agrees with the delivery counts.
func TestDebugPlaneEndToEnd(t *testing.T) {
	const (
		blockSize = 16 << 10
		nBlocks   = 24
	)
	met := metrics.NewRegistry()
	trace := obs.NewDecisionLog(256)
	b, err := broker.New(broker.Config{
		Channels:  []string{"md"},
		Heartbeat: -1,
		Metrics:   met,
		Trace:     trace,
		Logf:      func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- b.Serve(ln) }()

	dbg, err := obs.Serve("127.0.0.1:0", met, trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	base := "http://" + dbg.Addr().String()

	// Subscriber: record the method of every frame seen on the wire, in
	// order — the ground truth the decision log must agree with.
	subConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer subConn.Close()
	if err := broker.HandshakeSubscribe(subConn, "md"); err != nil {
		t.Fatal(err)
	}
	var wireMethods []string
	var received bytes.Buffer
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		fr := codec.NewFrameReader(subConn, nil)
		for {
			data, info, err := fr.ReadBlock()
			if err != nil {
				return
			}
			if len(data) == 0 {
				continue
			}
			wireMethods = append(wireMethods, info.Method.String())
			received.Write(data)
		}
	}()

	// Publisher: an adaptive writer, as ccsend would run it.
	pubConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.HandshakePublish(pubConn, "md"); err != nil {
		t.Fatal(err)
	}
	cfg := selector.DefaultConfig()
	cfg.BlockSize = blockSize
	pubEngine, err := core.NewEngine(core.Config{Selector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	data := datagen.OISTransactions(nBlocks*blockSize, 0.9, 11)
	w := core.NewWriter(pubConn, pubEngine, nil)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pubConn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	select {
	case <-subDone:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never saw EOF")
	}
	if !bytes.Equal(received.Bytes(), data) {
		t.Fatalf("subscriber got %d bytes, want %d identical", received.Len(), len(data))
	}
	if len(wireMethods) != nBlocks {
		t.Fatalf("wire carried %d blocks, want %d", len(wireMethods), nBlocks)
	}

	// (a) Prometheus exposition.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want Prometheus text exposition", ct)
	}
	prom := string(body)
	if !strings.Contains(prom, "# TYPE ccx_encode_seconds histogram") {
		t.Error("/metrics missing the encode-latency histogram family")
	}
	wantBucket := `ccx_encode_seconds_bucket{le="+Inf"} ` + fmt.Sprint(nBlocks)
	if !strings.Contains(prom, wantBucket) {
		t.Errorf("/metrics missing cumulative bucket line %q", wantBucket)
	}
	if !strings.Contains(prom, fmt.Sprintf("ccx_tx_blocks %d", nBlocks)) {
		t.Errorf("/metrics tx_blocks != %d", nBlocks)
	}
	// Every non-comment line is "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(prom), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// (b) The decision log's chosen methods match the wire, block for block.
	resp, err = http.Get(base + "/debug/decisions")
	if err != nil {
		t.Fatal(err)
	}
	var recs []obs.Record
	err = json.NewDecoder(resp.Body).Decode(&recs)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var logMethods []string
	for _, rec := range recs {
		if rec.Stream != "sub.1" {
			continue
		}
		if rec.Block != len(logMethods) {
			t.Fatalf("trace out of order: block %d at position %d", rec.Block, len(logMethods))
		}
		if rec.Reason == "" || rec.BlockLen == 0 || rec.WireBytes == 0 {
			t.Errorf("trace record missing decision inputs: %+v", rec)
		}
		logMethods = append(logMethods, rec.Method)
	}
	if len(logMethods) != len(wireMethods) {
		t.Fatalf("decision log has %d sub.1 records, wire carried %d blocks", len(logMethods), len(wireMethods))
	}
	for i, m := range wireMethods {
		if logMethods[i] != m {
			t.Errorf("block %d: decision log says %q, wire says %q", i, logMethods[i], m)
		}
	}

	// (c) /debug/vars agrees with the delivery counts.
	resp, err = http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]float64
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := vars["broker.events_in"]; got != nBlocks {
		t.Errorf("vars broker.events_in = %v, want %d", got, nBlocks)
	}
	if got := vars["ccx.tx_blocks"]; got != nBlocks {
		t.Errorf("vars ccx.tx_blocks = %v, want %d", got, nBlocks)
	}
	if got := vars["ccx.encode_seconds.count"]; got != nBlocks {
		t.Errorf("vars ccx.encode_seconds.count = %v, want %d", got, nBlocks)
	}
}
