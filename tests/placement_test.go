package integration

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/core"
	"ccx/internal/datagen"
	"ccx/internal/faultnet"
	"ccx/internal/metrics"
	"ccx/internal/selector"
	"ccx/internal/testx"
)

// pinPolicy pins the method selector to one codec, so each matrix cell
// exercises exactly one (placement, method) combination regardless of what
// the adaptive algorithm would choose.
type pinPolicy struct{ m codec.Method }

func (p pinPolicy) Name() string { return "pin:" + p.m.String() }
func (p pinPolicy) Select(in selector.Inputs) selector.Decision {
	return selector.Decision{Method: p.m, Inputs: in, LZReduceTime: in.LZReduceTime()}
}

// placementFilter honors the CCX_PLACEMENT environment variable, which CI's
// placement matrix sets to run one placement's cells per job. Empty runs
// everything.
func placementFilter(t *testing.T, pl selector.Placement) {
	t.Helper()
	if want := os.Getenv("CCX_PLACEMENT"); want != "" && want != pl.String() {
		t.Skipf("CCX_PLACEMENT=%s filters out %s", want, pl)
	}
}

// TestPlacementEquivalence is the placement × method break-even battery's
// correctness half: for every compression placement (publisher, broker,
// receiver) crossed with every §2 codec method, the delivered bytes must be
// identical to the published bytes — placement moves *where* compression
// runs, never *what* arrives. Each cell runs the full wire path
// (publisher frames → TCP → broker → shared encode plane → subscriber)
// under a rotating faultnet plan (clean, bit flips, mid-frame stall, abrupt
// reset), so the identity also holds mid-chaos: faults may drop blocks,
// never alter them.
func TestPlacementEquivalence(t *testing.T) {
	const (
		nBlocks   = 24
		blockSize = 16 << 10
	)
	blocks := make([][]byte, nBlocks)
	for i := range blocks {
		b := datagen.OISTransactions(blockSize, 0.9, int64(i+1))
		binary.BigEndian.PutUint32(b[:4], uint32(i))
		blocks[i] = b
	}

	methods := []codec.Method{
		codec.None, codec.Huffman, codec.Arithmetic, codec.LempelZiv, codec.BurrowsWheeler,
	}
	placements := []selector.Placement{
		selector.PlacementPublisher, selector.PlacementBroker, selector.PlacementReceiver,
	}
	plans := []struct {
		name string
		plan faultnet.Plan
		// wantAll: lossless plan, every block must arrive.
		wantAll bool
		// wantPubErr: the publisher's own writes are allowed to fail.
		wantPubErr bool
	}{
		{name: "clean", wantAll: true},
		{name: "bitflip", plan: faultnet.Plan{FlipPer: 64 << 10, Seed: 7}},
		{name: "stall", plan: faultnet.Plan{StallAt: 128 << 10, Stall: 200 * time.Millisecond, Seed: 5}, wantAll: true},
		// The reset offset sits well under the stream's most compressed wire
		// size (~60 KiB at BWT for these blocks), so the reset fires whether
		// the publisher ships raw or compressed.
		{name: "reset", plan: faultnet.Plan{ResetAt: 48 << 10, Seed: 9}, wantPubErr: true},
	}

	combo := 0
	for _, pl := range placements {
		for _, m := range methods {
			tc := plans[combo%len(plans)]
			combo++
			name := fmt.Sprintf("%s/%s/%s", pl, m, tc.name)
			t.Run(name, func(t *testing.T) {
				placementFilter(t, pl)
				met := metrics.NewRegistry()
				cfg := broker.Config{
					Channels:  []string{"md"},
					Heartbeat: -1,
					Placement: pl,
					Metrics:   met,
					Logf:      func(string, ...any) {},
				}
				cfg.Engine.Selector = selector.DefaultConfig()
				cfg.Engine.Selector.BlockSize = blockSize
				cfg.Engine.Policy = pinPolicy{m}
				b, err := broker.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				serveDone := make(chan error, 1)
				go func() { serveDone <- b.Serve(ln) }()

				// Subscriber: collect delivered blocks by stamped index, and
				// keep each frame's wire method — receiver placement must ship
				// everything raw.
				subConn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					t.Fatal(err)
				}
				defer subConn.Close()
				if err := broker.HandshakeSubscribe(subConn, "md"); err != nil {
					t.Fatal(err)
				}
				var mu sync.Mutex
				got := make(map[uint32][]byte)
				var wireMethods []codec.Method
				subDone := make(chan struct{})
				go func() {
					defer close(subDone)
					fr := codec.NewFrameReader(subConn, nil)
					for {
						data, info, err := fr.ReadBlock()
						if err != nil {
							return
						}
						if len(data) < 4 {
							continue // keepalive
						}
						mu.Lock()
						got[binary.BigEndian.Uint32(data[:4])] = append([]byte(nil), data...)
						wireMethods = append(wireMethods, info.Method)
						mu.Unlock()
					}
				}()
				received := func() int {
					mu.Lock()
					defer mu.Unlock()
					return len(got)
				}

				// Publisher half of the placement: publisher-side compression
				// ships frames already encoded with the cell's method; broker-
				// and receiver-side placement ship raw (None) frames and leave
				// compression to the downstream hop (or nobody).
				pubMethod := codec.None
				if pl == selector.PlacementPublisher {
					pubMethod = m
				}
				pubConn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					t.Fatal(err)
				}
				if err := broker.HandshakePublish(pubConn, "md"); err != nil {
					t.Fatal(err)
				}
				pub := faultnet.Wrap(pubConn, tc.plan)
				var pubErr error
				for _, block := range blocks {
					frame, _, err := codec.AppendFrame(nil, nil, pubMethod, block)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := pub.Write(frame); err != nil {
						pubErr = err
						break
					}
				}
				pub.Close()

				// Wait for intake to go quiet and the subscriber to catch up.
				eventsIn := met.Counter("broker.events_in")
				deadline := time.Now().Add(10 * time.Second)
				for {
					if time.Now().After(deadline) {
						t.Fatalf("delivery never settled: %d ingested, %d received",
							eventsIn.Value(), received())
					}
					before := eventsIn.Value()
					time.Sleep(75 * time.Millisecond)
					if eventsIn.Value() == before && int64(received()) == before {
						break
					}
				}

				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := b.Shutdown(ctx); err != nil {
					t.Fatalf("shutdown: %v", err)
				}
				if err := <-serveDone; err != nil {
					t.Fatalf("serve: %v", err)
				}
				select {
				case <-subDone:
				case <-time.After(5 * time.Second):
					t.Fatal("subscriber loop never ended after shutdown")
				}

				// The invariant: every delivered block byte-identical.
				mu.Lock()
				for idx, data := range got {
					if int(idx) >= len(blocks) {
						t.Fatalf("delivered unknown block index %d", idx)
					}
					testx.ByteIdentity(t, fmt.Sprintf("block %d", idx), data, blocks[idx])
				}
				n := len(got)
				methodsSeen := append([]codec.Method(nil), wireMethods...)
				mu.Unlock()

				if tc.wantAll && n != nBlocks {
					t.Fatalf("delivered %d of %d blocks over a lossless plan", n, nBlocks)
				}
				if n == 0 {
					t.Fatal("fault plan destroyed every single block")
				}
				// Receiver placement ships raw end to end: no frame toward the
				// subscriber may carry a compressed method.
				if pl == selector.PlacementReceiver {
					for i, wm := range methodsSeen {
						if wm != codec.None {
							t.Fatalf("frame %d shipped as %s under receiver placement", i, wm)
						}
					}
					if met.Counter("encplane.placement.receiver").Value() == 0 {
						t.Fatal("encplane.placement.receiver counter stayed 0")
					}
				}
				if tc.wantPubErr {
					if !errors.Is(pubErr, faultnet.ErrInjectedReset) {
						t.Fatalf("publisher error = %v, want injected reset", pubErr)
					}
				} else if pubErr != nil {
					t.Fatalf("publisher failed: %v", pubErr)
				}
			})
		}
	}
}

// TestPlacementResumeEquivalence runs the resumable-session path once per
// placement: the stream is published up front, a subscriber resumes from
// zero with an advertised placement, and the replay (served from the
// broker's replay ring through the shared frame cache) must deliver every
// block exactly once, byte-identical, in order — with receiver placement
// additionally shipping every replayed frame raw.
func TestPlacementResumeEquivalence(t *testing.T) {
	const (
		nBlocks   = 24
		blockSize = 16 << 10
	)
	blocks := make([][]byte, nBlocks)
	for i := range blocks {
		blocks[i] = datagen.OISTransactions(blockSize, 0.9, int64(200+i))
	}
	for _, pl := range []selector.Placement{
		selector.PlacementPublisher, selector.PlacementBroker, selector.PlacementReceiver,
	} {
		t.Run(pl.String(), func(t *testing.T) {
			placementFilter(t, pl)
			met := metrics.NewRegistry()
			cfg := broker.Config{
				Channels:     []string{"md"},
				Heartbeat:    -1,
				ReplayBlocks: nBlocks * 2,
				ReplayBytes:  64 << 20,
				Metrics:      met,
				Logf:         func(string, ...any) {},
			}
			cfg.Engine.Selector = selector.DefaultConfig()
			cfg.Engine.Selector.BlockSize = blockSize
			cfg.Engine.Policy = pinPolicy{codec.LempelZiv}
			b, err := broker.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- b.Serve(ln) }()
			for _, blk := range blocks {
				if err := b.Publish("md", blk); err != nil {
					t.Fatal(err)
				}
			}

			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			// The version-3 resume hello advertises this session's placement;
			// the whole replay backlog must honor it.
			firstSeq, err := broker.HandshakeResumePlacement(conn, "md", 0, pl)
			if err != nil {
				t.Fatal(err)
			}
			if firstSeq != 1 {
				t.Fatalf("firstSeq = %d, want 1", firstSeq)
			}
			track := new(core.DeliveryTracker)
			delivered := make(map[uint64][]byte)
			var order []uint64
			fr := codec.NewFrameReader(conn, nil)
			for len(delivered) < nBlocks {
				data, info, err := fr.ReadBlock()
				if err != nil {
					t.Fatalf("replay read after %d blocks: %v", len(delivered), err)
				}
				if len(data) == 0 {
					continue
				}
				if !info.HasSeq {
					t.Fatal("broker delivered an unsequenced event")
				}
				if pl == selector.PlacementReceiver && info.Method != codec.None {
					t.Fatalf("replayed seq %d shipped as %s under receiver placement",
						info.Seq, info.Method)
				}
				deliver, _ := track.Observe(info.Seq)
				if !deliver {
					t.Fatalf("duplicate seq %d in replay", info.Seq)
				}
				delivered[info.Seq] = append([]byte(nil), data...)
				order = append(order, info.Seq)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := b.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			if err := <-serveDone; err != nil {
				t.Fatalf("serve: %v", err)
			}

			for i := 1; i < len(order); i++ {
				if order[i] <= order[i-1] {
					t.Fatalf("out-of-order replay: seq %d after %d", order[i], order[i-1])
				}
			}
			for seq, data := range delivered {
				testx.ByteIdentity(t, fmt.Sprintf("block seq %d", seq), data, blocks[seq-1])
			}
			if st := track.Stats(); st.GapBlocks != 0 {
				t.Fatalf("%d blocks lost on an in-window resume", st.GapBlocks)
			}
		})
	}
}
