package integration

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ccx/internal/broker"
	"ccx/internal/codec"
	"ccx/internal/datagen"
	"ccx/internal/faultnet"
	"ccx/internal/metrics"
	"ccx/internal/selector"
	"ccx/internal/testx"
)

// runShardCell runs one (method, placement, fault-plan) cell against a
// broker with the given shard count and returns each subscriber's decoded
// payload stream concatenated in arrival order. The publisher path is
// byte-deterministic (pinned method, fixed blocks, seeded fault plan keyed
// to stream offsets), so two runs of the same cell ingest — and therefore
// must deliver — the same block set regardless of shard count; only the
// wire encoding toward each subscriber is free to differ.
func runShardCell(t *testing.T, shards int, m codec.Method, pl selector.Placement,
	plan faultnet.Plan, blocks [][]byte) [][]byte {
	t.Helper()
	const nSubs = 2

	met := metrics.NewRegistry()
	cfg := broker.Config{
		Channels:  []string{"md"},
		Heartbeat: -1,
		Shards:    shards,
		Placement: pl,
		Metrics:   met,
		Logf:      func(string, ...any) {},
	}
	cfg.Engine.Selector = selector.DefaultConfig()
	cfg.Engine.Selector.BlockSize = len(blocks[0])
	cfg.Engine.Policy = pinPolicy{m}
	b, err := broker.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- b.Serve(ln) }()

	// Subscribers: each concatenates its decoded blocks in arrival order.
	streams := make([][]byte, nSubs)
	counts := make([]int, nSubs)
	var mu sync.Mutex
	var subWG sync.WaitGroup
	conns := make([]net.Conn, nSubs)
	for i := 0; i < nSubs; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
		if err := broker.HandshakeSubscribe(conn, "md"); err != nil {
			t.Fatal(err)
		}
		subWG.Add(1)
		go func(i int) {
			defer subWG.Done()
			fr := codec.NewFrameReader(conns[i], nil)
			for {
				data, _, err := fr.ReadBlock()
				if err != nil {
					return
				}
				if len(data) == 0 {
					continue
				}
				mu.Lock()
				streams[i] = append(streams[i], data...)
				counts[i]++
				mu.Unlock()
			}
		}(i)
	}
	received := func(i int) int64 {
		mu.Lock()
		defer mu.Unlock()
		return int64(counts[i])
	}

	// Publisher: frames go through the fault plan; publisher placement
	// ships them pre-encoded with the cell's method, the others ship raw.
	pubMethod := codec.None
	if pl == selector.PlacementPublisher {
		pubMethod = m
	}
	pubConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.HandshakePublish(pubConn, "md"); err != nil {
		t.Fatal(err)
	}
	pub := faultnet.Wrap(pubConn, plan)
	for _, block := range blocks {
		frame, _, err := codec.AppendFrame(nil, nil, pubMethod, block)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pub.Write(frame); err != nil {
			break // injected reset: the surviving prefix is deterministic
		}
	}
	pub.Close()

	// The publisher is done; wait for intake to go quiet and every
	// subscriber to catch up with everything ingested.
	eventsIn := met.Counter("broker.events_in")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("delivery never settled: %d ingested, %d/%d received",
				eventsIn.Value(), received(0), received(1))
		}
		before := eventsIn.Value()
		time.Sleep(75 * time.Millisecond)
		if eventsIn.Value() == before && received(0) == before && received(1) == before {
			break
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	subWG.Wait()
	for _, c := range conns {
		c.Close()
	}
	return streams
}

// TestSwarmByteIdentity gates the sharded core on output equivalence: for
// every §2 codec method crossed with every compression placement, a
// multi-shard broker must hand each subscriber a byte-identical decoded
// stream to the single-loop (Shards=1) reference broker, under a rotating
// slice of the fault matrix. Sharding moves fan-out work between event
// loops; it must never change what arrives. Run under -race in CI's
// shard-churn job.
func TestSwarmByteIdentity(t *testing.T) {
	const (
		nBlocks   = 16
		blockSize = 8 << 10
	)
	blocks := make([][]byte, nBlocks)
	for i := range blocks {
		b := datagen.OISTransactions(blockSize, 0.9, int64(i+1))
		binary.BigEndian.PutUint32(b[:4], uint32(i))
		blocks[i] = b
	}

	methods := []codec.Method{
		codec.None, codec.Huffman, codec.Arithmetic, codec.LempelZiv, codec.BurrowsWheeler,
	}
	placements := []selector.Placement{
		selector.PlacementPublisher, selector.PlacementBroker, selector.PlacementReceiver,
	}
	plans := []struct {
		name string
		plan faultnet.Plan
	}{
		{name: "clean"},
		{name: "bitflip", plan: faultnet.Plan{FlipPer: 48 << 10, Seed: 7}},
		{name: "stall", plan: faultnet.Plan{StallAt: 64 << 10, Stall: 150 * time.Millisecond, Seed: 5}},
		{name: "reset", plan: faultnet.Plan{ResetAt: 40 << 10, Seed: 9}},
	}

	combo := 0
	for _, pl := range placements {
		for _, m := range methods {
			tc := plans[combo%len(plans)]
			combo++
			name := fmt.Sprintf("%s/%s/%s", pl, m, tc.name)
			t.Run(name, func(t *testing.T) {
				placementFilter(t, pl)
				single := runShardCell(t, 1, m, pl, tc.plan, blocks)
				sharded := runShardCell(t, 4, m, pl, tc.plan, blocks)
				delivered := 0
				for i := range single {
					testx.ByteIdentity(t, fmt.Sprintf("subscriber %d stream", i),
						sharded[i], single[i])
					delivered += len(single[i])
				}
				if delivered == 0 && tc.name != "reset" {
					t.Fatal("cell delivered zero bytes — identity check is vacuous")
				}
			})
		}
	}
}
